//===- dataset/export.h - Plaintext dataset export --------------------------===//
//
// The original pipeline materializes the dataset as parallel text files that
// OpenNMT consumes: one line per sample, source tokens in one file and
// target tokens in the other. This module reproduces that interchange
// format so the dataset can be inspected with standard tools or fed to an
// external NMT stack:
//
//   <dir>/{train,valid,test}.{param,return}.{wasm,type}
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DATASET_EXPORT_H
#define SNOWWHITE_DATASET_EXPORT_H

#include "dataset/pipeline.h"
#include "support/result.h"
#include "typelang/variants.h"

#include <string>

namespace snowwhite {
namespace dataset {

/// Export configuration.
struct ExportOptions {
  typelang::TypeLanguageKind Language = typelang::TypeLanguageKind::TL_Sw;
};

/// Writes the six split/element file pairs under Directory (which must
/// exist). Returns the number of lines written per file pair in order
/// train.param, train.return, valid.param, valid.return, test.param,
/// test.return.
Result<std::vector<uint64_t>> exportPlaintext(const Dataset &Data,
                                              const std::string &Directory,
                                              const ExportOptions &Options = {});

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_EXPORT_H
