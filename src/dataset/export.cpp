#include "dataset/export.h"

#include "support/str.h"

#include <cstdio>

namespace snowwhite {
namespace dataset {

namespace {

/// Writes one (source, target) line pair set; returns lines written or -1.
int64_t writeSplit(const Dataset &Data, const std::vector<uint32_t> &Split,
                   bool Returns, const std::string &SourcePath,
                   const std::string &TargetPath,
                   const ExportOptions &Options) {
  FILE *SourceFile = std::fopen(SourcePath.c_str(), "w");
  if (!SourceFile)
    return -1;
  FILE *TargetFile = std::fopen(TargetPath.c_str(), "w");
  if (!TargetFile) {
    std::fclose(SourceFile);
    return -1;
  }
  int64_t Lines = 0;
  for (uint32_t Index : Split) {
    const TypeSample &Sample = Data.Samples[Index];
    if (Sample.IsReturn != Returns)
      continue;
    std::fputs(joinStrings(Sample.Input, " ").c_str(), SourceFile);
    std::fputc('\n', SourceFile);
    std::vector<std::string> Target = typelang::lowerTypeToLanguage(
        Sample.RichType, Options.Language, &Data.Names);
    std::fputs(joinStrings(Target, " ").c_str(), TargetFile);
    std::fputc('\n', TargetFile);
    ++Lines;
  }
  std::fclose(SourceFile);
  std::fclose(TargetFile);
  return Lines;
}

} // namespace

Result<std::vector<uint64_t>>
exportPlaintext(const Dataset &Data, const std::string &Directory,
                const ExportOptions &Options) {
  struct Job {
    const std::vector<uint32_t> *Split;
    const char *SplitName;
    bool Returns;
  };
  const Job Jobs[] = {
      {&Data.Train, "train", false}, {&Data.Train, "train", true},
      {&Data.Valid, "valid", false}, {&Data.Valid, "valid", true},
      {&Data.Test, "test", false},   {&Data.Test, "test", true},
  };
  std::vector<uint64_t> Lines;
  for (const Job &J : Jobs) {
    std::string Stem = Directory + "/" + J.SplitName + "." +
                       (J.Returns ? "return" : "param");
    int64_t Written = writeSplit(Data, *J.Split, J.Returns, Stem + ".wasm",
                                 Stem + ".type", Options);
    if (Written < 0)
      return Error("cannot write " + Stem + ".{wasm,type}");
    Lines.push_back(static_cast<uint64_t>(Written));
  }
  return Lines;
}

} // namespace dataset
} // namespace snowwhite
