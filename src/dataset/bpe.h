//===- dataset/bpe.h - Byte-pair-encoding subword model (§4.1) -------------===//
//
// Code has a huge number of unique but infrequent tokens (the paper reports
// >427,000, mostly numbers like memory offsets and constants). Embedding all
// of them is wasteful, so the input is re-tokenized with a byte-pair-encoding
// subword model (Sennrich et al.): frequent tokens stay whole, rare tokens
// split into frequent subwords, at the cost of slightly longer sequences.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DATASET_BPE_H
#define SNOWWHITE_DATASET_BPE_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace snowwhite {
namespace dataset {

/// A trained BPE subword model over word-level tokens. Words are split into
/// byte symbols with an end-of-word marker, then the learned merges are
/// replayed greedily in learn order.
class BpeModel {
public:
  /// End-of-word marker appended to the final symbol of each word.
  static constexpr const char *EndOfWord = "</w>";

  /// Learns a merge table from word frequencies until the symbol vocabulary
  /// reaches TargetVocabSize (or no pair occurs at least twice). Tokens
  /// listed in Protected (e.g. '<param>', type keywords) are never split.
  void train(const std::map<std::string, uint64_t> &WordFrequencies,
             size_t TargetVocabSize,
             const std::vector<std::string> &Protected = {});

  /// Splits one word into subword symbols.
  std::vector<std::string> encodeWord(const std::string &Word) const;

  /// Encodes a token sequence (concatenation of per-word encodings).
  std::vector<std::string>
  encodeSequence(const std::vector<std::string> &Words) const;

  /// Reassembles words from a subword stream (inverse of encodeSequence for
  /// well-formed input; unterminated trailing symbols become a final word).
  std::vector<std::string>
  decodeSequence(const std::vector<std::string> &Symbols) const;

  /// All symbols the model can emit (single bytes with/without the marker
  /// plus merged symbols plus protected tokens).
  std::vector<std::string> symbolVocabulary() const;

  size_t numMerges() const { return Merges.size(); }
  bool isTrained() const { return Trained; }

private:
  std::vector<std::string> splitToSymbols(const std::string &Word) const;

  /// Learned merges in order; (left, right) -> left+right.
  std::vector<std::pair<std::string, std::string>> Merges;
  /// Merge lookup: "left\x1fright" -> rank.
  std::unordered_map<std::string, size_t> MergeRank;
  std::vector<std::string> ProtectedTokens;
  std::vector<std::string> BaseSymbols;
  bool Trained = false;
};

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_BPE_H
