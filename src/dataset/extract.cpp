#include "dataset/extract.h"

#include "support/arena.h"
#include "wasm/text.h"

#include <algorithm>
#include <cassert>

namespace snowwhite {
namespace dataset {

using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;

namespace {

/// An inclusive instruction-index range.
struct Window {
  size_t Begin;
  size_t End;
};

/// Per-thread scratch for window extraction. Extraction runs once per
/// parameter of every function of every module — the pipeline's allocation
/// churn hot spot — so the window list bump-allocates from an arena that is
/// reset (blocks retained) each call: steady state does no heap traffic.
/// thread_local because the pipeline fans extraction out over the pool.
thread_local Arena WindowArena;

/// Merges overlapping/adjacent windows in place (input must be sorted by
/// Begin); returns the merged count.
size_t mergeWindows(Window *Windows, size_t Count) {
  size_t Merged = 0;
  for (size_t I = 0; I < Count; ++I) {
    if (Merged != 0 && Windows[I].Begin <= Windows[Merged - 1].End + 1)
      Windows[Merged - 1].End =
          std::max(Windows[Merged - 1].End, Windows[I].End);
    else
      Windows[Merged++] = Windows[I];
  }
  return Merged;
}

/// Appends the token rendering of instruction I, substituting '<param>' for
/// the local index when I uses local ParamIndex (negative = no
/// substitution).
void appendInstrTokens(const Instr &I, int64_t ParamIndex,
                       std::vector<std::string> &Out) {
  std::vector<std::string> Tokens = wasm::instrTokens(I);
  if (ParamIndex >= 0 && I.isLocalOp() &&
      I.Imm0 == static_cast<uint64_t>(ParamIndex)) {
    assert(Tokens.size() == 2 && "local op should have an index token");
    Tokens[1] = ParamToken;
  }
  Out.insert(Out.end(), Tokens.begin(), Tokens.end());
}

/// Renders windows over Body into the final token sequence.
std::vector<std::string> renderWindows(const Function &Func,
                                       const Window *Windows,
                                       size_t NumWindows, int64_t ParamIndex,
                                       const char *LowLevelName,
                                       const ExtractOptions &Options,
                                       std::vector<std::string> Evidence,
                                       const std::vector<std::string> *Paths) {
  std::vector<std::string> Out;
  if (Options.IncludeLowLevelType)
    Out.emplace_back(LowLevelName);
  for (std::string &Token : Evidence)
    Out.push_back(std::move(Token));
  if (Options.PathTokens && Paths)
    Out.insert(Out.end(), Paths->begin(), Paths->end());
  Out.emplace_back(BeginToken);
  for (size_t WindowIndex = 0; WindowIndex < NumWindows; ++WindowIndex) {
    if (WindowIndex != 0)
      Out.emplace_back(WindowToken);
    const Window &W = Windows[WindowIndex];
    for (size_t InstrIndex = W.Begin; InstrIndex <= W.End; ++InstrIndex) {
      if (InstrIndex != W.Begin)
        Out.emplace_back(InstrSeparator);
      appendInstrTokens(Func.Body[InstrIndex], ParamIndex, Out);
    }
  }
  return Out;
}

} // namespace

std::vector<std::string>
extractParamInput(const Module &M, uint32_t DefinedIndex, uint32_t ParamIndex,
                  const ExtractOptions &Options,
                  const analysis::ParamEvidence *Evidence,
                  const std::vector<std::string> *Paths) {
  assert(DefinedIndex < M.Functions.size() && "function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  const wasm::FuncType &Type = M.functionType(DefinedIndex);
  assert(ParamIndex < Type.Params.size() && "parameter index out of range");
  const char *LowLevelName = wasm::valTypeName(Type.Params[ParamIndex]);

  // At most one window per body instruction (plus the whole-body
  // fallback), so one arena array of that capacity covers the call.
  WindowArena.reset();
  Window *Windows =
      WindowArena.allocateArray<Window>(Func.Body.size() + 1);
  size_t NumWindows = 0;
  if (Options.UseWindows && !Func.Body.empty()) {
    unsigned Radius = Options.ParamWindow / 2;
    for (size_t InstrIndex = 0; InstrIndex < Func.Body.size(); ++InstrIndex) {
      const Instr &I = Func.Body[InstrIndex];
      if (I.isLocalOp() && I.Imm0 == ParamIndex) {
        size_t Begin = InstrIndex >= Radius ? InstrIndex - Radius : 0;
        size_t End = std::min(InstrIndex + Radius, Func.Body.size() - 1);
        Windows[NumWindows++] = {Begin, End};
      }
    }
    NumWindows = mergeWindows(Windows, NumWindows);
  }
  if (NumWindows == 0 && !Func.Body.empty()) {
    // Unused parameter (or windowing disabled): fall back to the whole body.
    Windows[NumWindows++] = {0, Func.Body.size() - 1};
  }
  std::vector<std::string> EvidenceTokens;
  if (Options.EvidenceTokens && Evidence)
    EvidenceTokens = analysis::evidenceTokens(*Evidence);
  return renderWindows(Func, Windows, NumWindows,
                       static_cast<int64_t>(ParamIndex), LowLevelName, Options,
                       std::move(EvidenceTokens), Paths);
}

std::vector<std::string>
extractReturnInput(const Module &M, uint32_t DefinedIndex,
                   const ExtractOptions &Options,
                   const analysis::ReturnEvidence *Evidence,
                   const std::vector<std::string> *Paths) {
  assert(DefinedIndex < M.Functions.size() && "function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  const wasm::FuncType &Type = M.functionType(DefinedIndex);
  assert(!Type.Results.empty() && "return extraction on void function");
  const char *LowLevelName = wasm::valTypeName(Type.Results[0]);

  WindowArena.reset();
  Window *Windows =
      WindowArena.allocateArray<Window>(Func.Body.size() + 1);
  size_t NumWindows = 0;
  if (Options.UseWindows && !Func.Body.empty()) {
    unsigned Span = Options.ReturnWindow;
    auto WindowEndingAt = [&](size_t InstrIndex) {
      size_t Begin = InstrIndex + 1 >= Span ? InstrIndex + 1 - Span : 0;
      return Window{Begin, InstrIndex};
    };
    for (size_t InstrIndex = 0; InstrIndex < Func.Body.size(); ++InstrIndex)
      if (Func.Body[InstrIndex].Op == Opcode::Return)
        Windows[NumWindows++] = WindowEndingAt(InstrIndex);
    // The implicit fall-through return at the end of the body.
    Windows[NumWindows++] = WindowEndingAt(Func.Body.size() - 1);
    NumWindows = mergeWindows(Windows, NumWindows);
  }
  if (NumWindows == 0 && !Func.Body.empty())
    Windows[NumWindows++] = {0, Func.Body.size() - 1};
  std::vector<std::string> EvidenceTokens;
  if (Options.EvidenceTokens && Evidence)
    EvidenceTokens = analysis::evidenceTokens(*Evidence);
  return renderWindows(Func, Windows, NumWindows, /*ParamIndex=*/-1,
                       LowLevelName, Options, std::move(EvidenceTokens),
                       Paths);
}

} // namespace dataset
} // namespace snowwhite
