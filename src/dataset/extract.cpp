#include "dataset/extract.h"

#include "wasm/text.h"

#include <algorithm>
#include <cassert>

namespace snowwhite {
namespace dataset {

using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;

namespace {

/// An inclusive instruction-index range.
struct Window {
  size_t Begin;
  size_t End;
};

/// Merges overlapping/adjacent windows (input must be sorted by Begin).
std::vector<Window> mergeWindows(std::vector<Window> Windows) {
  std::vector<Window> Merged;
  for (const Window &W : Windows) {
    if (!Merged.empty() && W.Begin <= Merged.back().End + 1)
      Merged.back().End = std::max(Merged.back().End, W.End);
    else
      Merged.push_back(W);
  }
  return Merged;
}

/// Appends the token rendering of instruction I, substituting '<param>' for
/// the local index when I uses local ParamIndex (negative = no
/// substitution).
void appendInstrTokens(const Instr &I, int64_t ParamIndex,
                       std::vector<std::string> &Out) {
  std::vector<std::string> Tokens = wasm::instrTokens(I);
  if (ParamIndex >= 0 && I.isLocalOp() &&
      I.Imm0 == static_cast<uint64_t>(ParamIndex)) {
    assert(Tokens.size() == 2 && "local op should have an index token");
    Tokens[1] = ParamToken;
  }
  Out.insert(Out.end(), Tokens.begin(), Tokens.end());
}

/// Renders windows over Body into the final token sequence.
std::vector<std::string> renderWindows(const Function &Func,
                                       const std::vector<Window> &Windows,
                                       int64_t ParamIndex,
                                       const char *LowLevelName,
                                       const ExtractOptions &Options,
                                       std::vector<std::string> Evidence,
                                       const std::vector<std::string> *Paths) {
  std::vector<std::string> Out;
  if (Options.IncludeLowLevelType)
    Out.emplace_back(LowLevelName);
  for (std::string &Token : Evidence)
    Out.push_back(std::move(Token));
  if (Options.PathTokens && Paths)
    Out.insert(Out.end(), Paths->begin(), Paths->end());
  Out.emplace_back(BeginToken);
  for (size_t WindowIndex = 0; WindowIndex < Windows.size(); ++WindowIndex) {
    if (WindowIndex != 0)
      Out.emplace_back(WindowToken);
    const Window &W = Windows[WindowIndex];
    for (size_t InstrIndex = W.Begin; InstrIndex <= W.End; ++InstrIndex) {
      if (InstrIndex != W.Begin)
        Out.emplace_back(InstrSeparator);
      appendInstrTokens(Func.Body[InstrIndex], ParamIndex, Out);
    }
  }
  return Out;
}

} // namespace

std::vector<std::string>
extractParamInput(const Module &M, uint32_t DefinedIndex, uint32_t ParamIndex,
                  const ExtractOptions &Options,
                  const analysis::ParamEvidence *Evidence,
                  const std::vector<std::string> *Paths) {
  assert(DefinedIndex < M.Functions.size() && "function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  const wasm::FuncType &Type = M.functionType(DefinedIndex);
  assert(ParamIndex < Type.Params.size() && "parameter index out of range");
  const char *LowLevelName = wasm::valTypeName(Type.Params[ParamIndex]);

  std::vector<Window> Windows;
  if (Options.UseWindows && !Func.Body.empty()) {
    unsigned Radius = Options.ParamWindow / 2;
    for (size_t InstrIndex = 0; InstrIndex < Func.Body.size(); ++InstrIndex) {
      const Instr &I = Func.Body[InstrIndex];
      if (I.isLocalOp() && I.Imm0 == ParamIndex) {
        size_t Begin = InstrIndex >= Radius ? InstrIndex - Radius : 0;
        size_t End = std::min(InstrIndex + Radius, Func.Body.size() - 1);
        Windows.push_back({Begin, End});
      }
    }
    Windows = mergeWindows(std::move(Windows));
  }
  if (Windows.empty()) {
    // Unused parameter (or windowing disabled): fall back to the whole body.
    Windows.push_back({0, Func.Body.empty() ? 0 : Func.Body.size() - 1});
    if (Func.Body.empty())
      Windows.clear();
  }
  std::vector<std::string> EvidenceTokens;
  if (Options.EvidenceTokens && Evidence)
    EvidenceTokens = analysis::evidenceTokens(*Evidence);
  return renderWindows(Func, Windows, static_cast<int64_t>(ParamIndex),
                       LowLevelName, Options, std::move(EvidenceTokens),
                       Paths);
}

std::vector<std::string>
extractReturnInput(const Module &M, uint32_t DefinedIndex,
                   const ExtractOptions &Options,
                   const analysis::ReturnEvidence *Evidence,
                   const std::vector<std::string> *Paths) {
  assert(DefinedIndex < M.Functions.size() && "function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  const wasm::FuncType &Type = M.functionType(DefinedIndex);
  assert(!Type.Results.empty() && "return extraction on void function");
  const char *LowLevelName = wasm::valTypeName(Type.Results[0]);

  std::vector<Window> Windows;
  if (Options.UseWindows && !Func.Body.empty()) {
    unsigned Span = Options.ReturnWindow;
    auto WindowEndingAt = [&](size_t InstrIndex) {
      size_t Begin = InstrIndex + 1 >= Span ? InstrIndex + 1 - Span : 0;
      return Window{Begin, InstrIndex};
    };
    for (size_t InstrIndex = 0; InstrIndex < Func.Body.size(); ++InstrIndex)
      if (Func.Body[InstrIndex].Op == Opcode::Return)
        Windows.push_back(WindowEndingAt(InstrIndex));
    // The implicit fall-through return at the end of the body.
    Windows.push_back(WindowEndingAt(Func.Body.size() - 1));
    Windows = mergeWindows(std::move(Windows));
  }
  if (Windows.empty() && !Func.Body.empty())
    Windows.push_back({0, Func.Body.size() - 1});
  std::vector<std::string> EvidenceTokens;
  if (Options.EvidenceTokens && Evidence)
    EvidenceTokens = analysis::evidenceTokens(*Evidence);
  return renderWindows(Func, Windows, /*ParamIndex=*/-1, LowLevelName,
                       Options, std::move(EvidenceTokens), Paths);
}

} // namespace dataset
} // namespace snowwhite
