#include "dataset/bpe.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace snowwhite {
namespace dataset {

namespace {

std::string mergeKey(const std::string &Left, const std::string &Right) {
  return Left + '\x1f' + Right;
}

} // namespace

std::vector<std::string>
BpeModel::splitToSymbols(const std::string &Word) const {
  std::vector<std::string> Symbols;
  for (size_t I = 0; I < Word.size(); ++I)
    Symbols.emplace_back(1, Word[I]);
  if (Symbols.empty())
    Symbols.emplace_back("");
  Symbols.back() += EndOfWord;
  return Symbols;
}

void BpeModel::train(const std::map<std::string, uint64_t> &WordFrequencies,
                     size_t TargetVocabSize,
                     const std::vector<std::string> &Protected) {
  assert(!Trained && "train called twice");
  ProtectedTokens = Protected;
  std::set<std::string> ProtectedSet(Protected.begin(), Protected.end());

  // Working copy: each word as its current symbol sequence, with frequency.
  struct WorkWord {
    std::vector<std::string> Symbols;
    uint64_t Frequency;
  };
  std::vector<WorkWord> Words;
  std::set<std::string> SymbolSet;
  for (const auto &[Word, Frequency] : WordFrequencies) {
    if (ProtectedSet.count(Word))
      continue;
    WorkWord Work{splitToSymbols(Word), Frequency};
    for (const std::string &Symbol : Work.Symbols)
      SymbolSet.insert(Symbol);
    Words.push_back(std::move(Work));
  }
  BaseSymbols.assign(SymbolSet.begin(), SymbolSet.end());

  size_t VocabSize = SymbolSet.size() + ProtectedTokens.size();
  while (VocabSize < TargetVocabSize) {
    // Count all adjacent pairs.
    std::map<std::pair<std::string, std::string>, uint64_t> PairCounts;
    for (const WorkWord &Work : Words)
      for (size_t I = 0; I + 1 < Work.Symbols.size(); ++I)
        PairCounts[{Work.Symbols[I], Work.Symbols[I + 1]}] += Work.Frequency;
    if (PairCounts.empty())
      break;
    auto Best = std::max_element(
        PairCounts.begin(), PairCounts.end(),
        [](const auto &A, const auto &B) { return A.second < B.second; });
    if (Best->second < 2)
      break;
    const auto &[Left, Right] = Best->first;
    std::string MergedSymbol = Left + Right;
    MergeRank.emplace(mergeKey(Left, Right), Merges.size());
    Merges.emplace_back(Left, Right);
    ++VocabSize;

    // Apply the merge to every word.
    for (WorkWord &Work : Words) {
      std::vector<std::string> NewSymbols;
      NewSymbols.reserve(Work.Symbols.size());
      for (size_t I = 0; I < Work.Symbols.size(); ++I) {
        if (I + 1 < Work.Symbols.size() && Work.Symbols[I] == Left &&
            Work.Symbols[I + 1] == Right) {
          NewSymbols.push_back(MergedSymbol);
          ++I;
        } else {
          NewSymbols.push_back(Work.Symbols[I]);
        }
      }
      Work.Symbols = std::move(NewSymbols);
    }
  }
  Trained = true;
}

std::vector<std::string> BpeModel::encodeWord(const std::string &Word) const {
  assert(Trained && "encode before train");
  for (const std::string &ProtectedToken : ProtectedTokens)
    if (Word == ProtectedToken)
      return {Word};

  std::vector<std::string> Symbols = splitToSymbols(Word);
  // Greedy lowest-rank-first merging (standard BPE application).
  while (Symbols.size() > 1) {
    size_t BestRank = SIZE_MAX;
    size_t BestIndex = SIZE_MAX;
    for (size_t I = 0; I + 1 < Symbols.size(); ++I) {
      auto It = MergeRank.find(mergeKey(Symbols[I], Symbols[I + 1]));
      if (It != MergeRank.end() && It->second < BestRank) {
        BestRank = It->second;
        BestIndex = I;
      }
    }
    if (BestIndex == SIZE_MAX)
      break;
    Symbols[BestIndex] += Symbols[BestIndex + 1];
    Symbols.erase(Symbols.begin() + BestIndex + 1);
  }
  return Symbols;
}

std::vector<std::string>
BpeModel::encodeSequence(const std::vector<std::string> &Words) const {
  std::vector<std::string> Out;
  for (const std::string &Word : Words) {
    std::vector<std::string> Symbols = encodeWord(Word);
    Out.insert(Out.end(), Symbols.begin(), Symbols.end());
  }
  return Out;
}

std::vector<std::string>
BpeModel::decodeSequence(const std::vector<std::string> &Symbols) const {
  std::vector<std::string> Words;
  std::string Current;
  const std::string Marker = EndOfWord;
  std::set<std::string> ProtectedSet(ProtectedTokens.begin(),
                                     ProtectedTokens.end());
  for (const std::string &Symbol : Symbols) {
    if (ProtectedSet.count(Symbol)) {
      if (!Current.empty()) {
        Words.push_back(Current);
        Current.clear();
      }
      Words.push_back(Symbol);
      continue;
    }
    if (Symbol.size() >= Marker.size() &&
        Symbol.compare(Symbol.size() - Marker.size(), Marker.size(), Marker) ==
            0) {
      Current += Symbol.substr(0, Symbol.size() - Marker.size());
      Words.push_back(Current);
      Current.clear();
    } else {
      Current += Symbol;
    }
  }
  if (!Current.empty())
    Words.push_back(Current);
  return Words;
}

std::vector<std::string> BpeModel::symbolVocabulary() const {
  assert(Trained && "vocabulary before train");
  std::set<std::string> Symbols(BaseSymbols.begin(), BaseSymbols.end());
  for (const auto &[Left, Right] : Merges)
    Symbols.insert(Left + Right);
  for (const std::string &ProtectedToken : ProtectedTokens)
    Symbols.insert(ProtectedToken);
  return std::vector<std::string>(Symbols.begin(), Symbols.end());
}

} // namespace dataset
} // namespace snowwhite
