//===- dataset/token_vocab.h - Token <-> id mapping for the model ----------===//

#ifndef SNOWWHITE_DATASET_TOKEN_VOCAB_H
#define SNOWWHITE_DATASET_TOKEN_VOCAB_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace snowwhite {
namespace dataset {

/// A fixed token vocabulary with the usual special ids. Unknown tokens map
/// to Unk on encode.
class TokenVocab {
public:
  static constexpr uint32_t Pad = 0; ///< Batch padding.
  static constexpr uint32_t Unk = 1; ///< Out-of-vocabulary token.
  static constexpr uint32_t Bos = 2; ///< Decoder start-of-sequence.
  static constexpr uint32_t Eos = 3; ///< End-of-sequence.

  TokenVocab() {
    addToken("<pad>");
    addToken("<unk>");
    addToken("<s>");
    addToken("</s>");
  }

  /// Adds a token if not present; returns its id.
  uint32_t addToken(const std::string &Token) {
    auto [It, Inserted] = Ids.emplace(Token, Tokens.size());
    if (Inserted)
      Tokens.push_back(Token);
    return It->second;
  }

  /// Id of Token, or Unk.
  uint32_t idOf(const std::string &Token) const {
    auto It = Ids.find(Token);
    return It == Ids.end() ? Unk : It->second;
  }

  bool contains(const std::string &Token) const { return Ids.count(Token); }

  const std::string &tokenOf(uint32_t Id) const {
    assert(Id < Tokens.size() && "token id out of range");
    return Tokens[Id];
  }

  size_t size() const { return Tokens.size(); }

  std::vector<uint32_t> encode(const std::vector<std::string> &Sequence) const {
    std::vector<uint32_t> Out;
    Out.reserve(Sequence.size());
    for (const std::string &Token : Sequence)
      Out.push_back(idOf(Token));
    return Out;
  }

  std::vector<std::string> decode(const std::vector<uint32_t> &Ids2) const {
    std::vector<std::string> Out;
    Out.reserve(Ids2.size());
    for (uint32_t Id : Ids2)
      Out.push_back(tokenOf(Id));
    return Out;
  }

private:
  std::vector<std::string> Tokens;
  std::unordered_map<std::string, uint32_t> Ids;
};

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_TOKEN_VOCAB_H
