#include "dataset/journal.h"

#include "support/hash.h"
#include "support/io.h"

#include <cstdio>

namespace snowwhite {
namespace dataset {
namespace journal {

const char *fileOutcomeName(FileOutcome Outcome) {
  switch (Outcome) {
  case FileOutcome::Kept:
    return "kept";
  case FileOutcome::QuarantinedParse:
    return "quarantined-parse";
  case FileOutcome::QuarantinedWatchdog:
    return "quarantined-watchdog";
  case FileOutcome::DuplicateExact:
    return "duplicate-exact";
  case FileOutcome::DuplicateNear:
    return "duplicate-near";
  }
  return "invalid-outcome";
}

namespace {

constexpr uint8_t Magic[4] = {'S', 'W', 'J', 'L'};
/// The highest error code a record may carry; anything above is a corrupted
/// (or future) taxonomy, rejected rather than cast blindly.
constexpr uint8_t MaxErrorCode = static_cast<uint8_t>(ErrorCode::Timeout);
constexpr uint8_t MaxOutcome =
    static_cast<uint8_t>(FileOutcome::DuplicateNear);
/// Serialized strings are paths and error messages; anything longer than
/// this is a corrupted length field, not a message.
constexpr uint64_t MaxStringBytes = 1u << 20;

void appendU32(uint32_t Value, std::vector<uint8_t> &Out) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<uint8_t>(Value >> Shift));
}

void appendU64(uint64_t Value, std::vector<uint8_t> &Out) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<uint8_t>(Value >> Shift));
}

void appendString(const std::string &Text, std::vector<uint8_t> &Out) {
  appendU64(Text.size(), Out);
  Out.insert(Out.end(), Text.begin(), Text.end());
}

/// Bounds-checked little-endian reader over the serialized journal.
class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &Input) : Bytes(Input) {}

  bool readU8(uint8_t &Out) {
    if (Offset >= Bytes.size())
      return false;
    Out = Bytes[Offset++];
    return true;
  }

  bool readU32(uint32_t &Out) {
    uint64_t Wide;
    if (!readFixed(4, Wide))
      return false;
    Out = static_cast<uint32_t>(Wide);
    return true;
  }

  bool readU64(uint64_t &Out) { return readFixed(8, Out); }

  bool readString(std::string &Out) {
    uint64_t Size;
    if (!readU64(Size) || Size > MaxStringBytes ||
        Size > Bytes.size() - Offset)
      return false;
    Out.assign(Bytes.begin() + static_cast<ptrdiff_t>(Offset),
               Bytes.begin() + static_cast<ptrdiff_t>(Offset + Size));
    Offset += Size;
    return true;
  }

  size_t remaining() const { return Bytes.size() - Offset; }
  bool atEnd() const { return Offset >= Bytes.size(); }

private:
  bool readFixed(size_t NumBytes, uint64_t &Out) {
    if (Bytes.size() - Offset < NumBytes)
      return false;
    Out = 0;
    for (size_t I = 0; I < NumBytes; ++I)
      Out |= static_cast<uint64_t>(Bytes[Offset + I]) << (8 * I);
    Offset += NumBytes;
    return true;
  }

  const std::vector<uint8_t> &Bytes;
  size_t Offset = 0;
};

} // namespace

DedupSnapshot IngestJournal::snapshot() const {
  DedupSnapshot Snap;
  for (const FileRecord &Rec : Records) {
    switch (Rec.Outcome) {
    case FileOutcome::Kept:
      ++Snap.KeptFiles;
      Snap.ExactSetDigest = hashCombine(Snap.ExactSetDigest, Rec.ExactHash);
      Snap.ApproxSetDigest =
          hashCombine(Snap.ApproxSetDigest, Rec.ApproxHash);
      break;
    case FileOutcome::QuarantinedParse:
      ++Snap.ParseQuarantines;
      break;
    case FileOutcome::QuarantinedWatchdog:
      ++Snap.WatchdogQuarantines;
      break;
    case FileOutcome::DuplicateExact:
      ++Snap.ExactDuplicates;
      break;
    case FileOutcome::DuplicateNear:
      ++Snap.NearDuplicates;
      break;
    }
  }
  return Snap;
}

std::vector<uint8_t> IngestJournal::serialize() const {
  std::vector<uint8_t> Out;
  // Byte-wise on purpose: GCC 12's -Wstringop-overflow misfires on a
  // range-insert from a constexpr array into an empty vector.
  for (uint8_t Byte : Magic)
    Out.push_back(Byte);
  appendU32(JournalVersion, Out);
  appendU64(ConfigDigest, Out);
  appendU64(Records.size(), Out);
  for (const FileRecord &Rec : Records) {
    appendString(Rec.RelPath, Out);
    Out.push_back(static_cast<uint8_t>(Rec.Outcome));
    Out.push_back(static_cast<uint8_t>(Rec.Code));
    appendString(Rec.Stage, Out);
    appendString(Rec.Message, Out);
    appendU64(Rec.ExactHash, Out);
    appendU64(Rec.ApproxHash, Out);
    appendU64(Rec.Bytes, Out);
    appendU64(Rec.Functions, Out);
    appendU64(Rec.Instructions, Out);
  }
  DedupSnapshot Snap = snapshot();
  appendU64(Snap.KeptFiles, Out);
  appendU64(Snap.ExactDuplicates, Out);
  appendU64(Snap.NearDuplicates, Out);
  appendU64(Snap.ParseQuarantines, Out);
  appendU64(Snap.WatchdogQuarantines, Out);
  appendU64(Snap.ExactSetDigest, Out);
  appendU64(Snap.ApproxSetDigest, Out);
  return Out;
}

Result<IngestJournal>
IngestJournal::deserialize(const std::vector<uint8_t> &Bytes) {
  Reader R(Bytes);
  uint8_t MagicByte;
  for (int I = 0; I < 4; ++I)
    if (!R.readU8(MagicByte) || MagicByte != Magic[I])
      return Error(ErrorCode::Malformed, "journal: bad magic");
  uint32_t Version;
  if (!R.readU32(Version))
    return Error(ErrorCode::Truncated, "journal: truncated header");
  if (Version != JournalVersion)
    return Error(ErrorCode::Unsupported,
                 "journal: version " + std::to_string(Version) +
                     " unsupported (expected " +
                     std::to_string(JournalVersion) + ")");
  IngestJournal J;
  uint64_t NumRecords;
  if (!R.readU64(J.ConfigDigest) || !R.readU64(NumRecords))
    return Error(ErrorCode::Truncated, "journal: truncated header");
  // Every record costs well over one byte; a count past the remaining bytes
  // is a hostile or corrupted header, not a record list.
  if (NumRecords > R.remaining())
    return Error(ErrorCode::Malformed,
                 "journal: record count " + std::to_string(NumRecords) +
                     " exceeds remaining bytes");
  J.Records.reserve(static_cast<size_t>(NumRecords));
  for (uint64_t I = 0; I < NumRecords; ++I) {
    std::string Where = "journal: record " + std::to_string(I) + ": ";
    FileRecord Rec;
    uint8_t Outcome, Code;
    if (!R.readString(Rec.RelPath) || !R.readU8(Outcome) || !R.readU8(Code) ||
        !R.readString(Rec.Stage) || !R.readString(Rec.Message) ||
        !R.readU64(Rec.ExactHash) || !R.readU64(Rec.ApproxHash) ||
        !R.readU64(Rec.Bytes) || !R.readU64(Rec.Functions) ||
        !R.readU64(Rec.Instructions))
      return Error(ErrorCode::Truncated, Where + "truncated");
    if (Outcome > MaxOutcome)
      return Error(ErrorCode::Malformed, Where + "invalid outcome");
    if (Code > MaxErrorCode)
      return Error(ErrorCode::Malformed, Where + "invalid error code");
    Rec.Outcome = static_cast<FileOutcome>(Outcome);
    Rec.Code = static_cast<ErrorCode>(Code);
    J.Records.push_back(std::move(Rec));
  }
  DedupSnapshot Stored;
  if (!R.readU64(Stored.KeptFiles) || !R.readU64(Stored.ExactDuplicates) ||
      !R.readU64(Stored.NearDuplicates) ||
      !R.readU64(Stored.ParseQuarantines) ||
      !R.readU64(Stored.WatchdogQuarantines) ||
      !R.readU64(Stored.ExactSetDigest) || !R.readU64(Stored.ApproxSetDigest))
    return Error(ErrorCode::Truncated, "journal: truncated dedup snapshot");
  if (!R.atEnd())
    return Error(ErrorCode::Malformed, "journal: trailing bytes");
  DedupSnapshot Computed = J.snapshot();
  if (Computed.KeptFiles != Stored.KeptFiles ||
      Computed.ExactDuplicates != Stored.ExactDuplicates ||
      Computed.NearDuplicates != Stored.NearDuplicates ||
      Computed.ParseQuarantines != Stored.ParseQuarantines ||
      Computed.WatchdogQuarantines != Stored.WatchdogQuarantines ||
      Computed.ExactSetDigest != Stored.ExactSetDigest ||
      Computed.ApproxSetDigest != Stored.ApproxSetDigest)
    return Error(ErrorCode::Malformed,
                 "journal: dedup snapshot disagrees with its records");
  return J;
}

Result<void> saveJournal(const std::string &Path, const IngestJournal &J,
                         fault::FaultInjector *Faults) {
  return io::writeFileChecksummed(Path, J.serialize(), Faults)
      .withContext("journal '" + Path + "'");
}

Result<IngestJournal> loadJournal(const std::string &Path,
                                  fault::FaultInjector *Faults) {
  Result<std::vector<uint8_t>> Bytes = io::readFileChecksummed(Path, Faults);
  if (Bytes.isErr())
    return Bytes.error();
  return IngestJournal::deserialize(*Bytes).withContext("journal '" + Path +
                                                        "'");
}

std::string quarantineJournal(const std::string &Path) {
  std::string Target = Path + ".quarantined";
  if (std::rename(Path.c_str(), Target.c_str()) != 0)
    return {};
  return Target;
}

} // namespace journal
} // namespace dataset
} // namespace snowwhite
