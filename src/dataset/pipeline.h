//===- dataset/pipeline.h - Corpus -> labeled dataset (paper §5) -----------===//
//
// Runs the full dataset construction over a corpus of compiled object files:
//
//  1. Deduplicate binaries: exact (whole-file hash) and near (approximate
//     signature over abstracted instructions, order-sensitive).
//  2. Parse each kept binary and its DWARF sections; match every wasm
//     function to its subprogram DIE via the code offset.
//  3. Filter: skip functions whose wasm/DWARF parameter counts disagree
//     (optimizations); extract a return sample only when DWARF has a
//     non-void return type and the wasm function returns a value.
//  4. Build the common-name vocabulary (names in >= 1% of packages).
//  5. Cap samples per package at the second most frequent package's count.
//  6. Split train/validation/test by package (96/2/2), never by sample.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DATASET_PIPELINE_H
#define SNOWWHITE_DATASET_PIPELINE_H

#include "analysis/evidence.h"
#include "dataset/extract.h"
#include "frontend/corpus.h"
#include "support/result.h"
#include "typelang/type.h"
#include "typelang/vocab.h"
#include "wasm/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace dataset {

/// Pipeline tuning.
struct DatasetOptions {
  ExtractOptions Extract;
  double TrainFraction = 0.96;
  double ValidFraction = 0.02; ///< Remainder after train+valid is test.
  bool Deduplicate = true;
  bool CapPerPackage = true;
  double NameVocabThreshold = 0.01; ///< Fraction of packages for a "common"
                                    ///< name.
  uint64_t SplitSeed = 7;
  /// Run the dataflow analysis (analysis/analyzer.h) on every kept binary
  /// and attach per-sample evidence summaries (TypeSample::Evidence).
  /// Implied by Extract.EvidenceTokens; also needed alone for the
  /// consistency-gate precision measurement.
  bool ComputeEvidence = false;
};

/// One labeled sample: the wasm input tokens and the "rich" converted type
/// (nested names kept), from which every language variant's target sequence
/// can be derived via typelang::lowerTypeToLanguage.
struct TypeSample {
  std::vector<std::string> Input;
  typelang::Type RichType;
  wasm::ValType LowLevel = wasm::ValType::I32;
  bool IsReturn = false;
  uint32_t PackageId = 0;
  /// EXTENSION (paper future work): when the sample's type is a pointer to
  /// a defined aggregate, the shape tokens of that aggregate's fields
  /// (typelang/fields.h); empty otherwise.
  std::vector<std::string> FieldTokens;
  /// Statically-proven evidence for this query slot; populated only when
  /// DatasetOptions::ComputeEvidence (or Extract.EvidenceTokens) is set.
  analysis::QueryEvidence Evidence;
};

/// One corrupt module set aside by the pipeline instead of aborting it.
struct QuarantineEntry {
  uint32_t PackageId = 0;
  uint32_t ObjectIndex = 0;   ///< Index within the package.
  std::string Stage;          ///< Pipeline stage that rejected it.
  ErrorCode Code = ErrorCode::Unknown;
  std::string Message;        ///< Full context-chained error.
};

/// Graceful-degradation report: which inputs were skipped, where, and why.
/// Ingestion of arbitrary binaries must never let one corrupt module abort
/// the dataset build; the surviving set is bit-identical at any thread count
/// because rejection decisions replay sequentially in corpus order.
struct QuarantineReport {
  uint64_t ParseFailures = 0;  ///< wasm::readModule rejected the bytes.
  uint64_t DebugFailures = 0;  ///< DWARF sections missing or malformed.
  std::vector<QuarantineEntry> Entries;

  uint64_t total() const { return ParseFailures + DebugFailures; }
  bool empty() const { return Entries.empty(); }
  /// Human-readable multi-line summary ("stage counts + one line per entry").
  std::string summary() const;
};

/// Size reduction achieved by deduplication (§5).
struct DedupStats {
  uint64_t ObjectsBefore = 0, ObjectsAfter = 0;
  uint64_t FunctionsBefore = 0, FunctionsAfter = 0;
  uint64_t InstructionsBefore = 0, InstructionsAfter = 0;
  uint64_t BytesBefore = 0, BytesAfter = 0;
  uint64_t ExactDuplicates = 0, NearDuplicates = 0;
  /// 64-bit hash matches whose full keys differed byte-wise; such objects
  /// are kept, never merged (collision-safe dedup).
  uint64_t SignatureCollisions = 0;
};

/// The assembled dataset.
struct Dataset {
  std::vector<TypeSample> Samples;
  std::vector<uint32_t> Train, Valid, Test; ///< Indices into Samples.
  typelang::NameVocabulary Names;
  DedupStats Dedup;
  QuarantineReport Quarantine;
  uint64_t FunctionsSkippedMismatch = 0;
  uint64_t SamplesDroppedByCap = 0;
  uint32_t NumPackages = 0;

  /// Counts parameter (IsReturn == false) samples among the given split.
  uint64_t countParams(const std::vector<uint32_t> &Split) const;
  uint64_t countReturns(const std::vector<uint32_t> &Split) const;
};

/// Runs the pipeline. Binaries are re-parsed from their serialized bytes, so
/// the wasm and DWARF readers are on the hot path exactly as they would be
/// on real binaries.
Dataset buildDataset(const frontend::Corpus &Corpus,
                     const DatasetOptions &Options = {});

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_PIPELINE_H
