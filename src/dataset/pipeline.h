//===- dataset/pipeline.h - Corpus -> labeled dataset (paper §5) -----------===//
//
// Runs the full dataset construction over a corpus of compiled object files:
//
//  1. Deduplicate binaries: exact (whole-file hash) and near (approximate
//     signature over abstracted instructions, order-sensitive).
//  2. Parse each kept binary and its DWARF sections; match every wasm
//     function to its subprogram DIE via the code offset.
//  3. Filter: skip functions whose wasm/DWARF parameter counts disagree
//     (optimizations); extract a return sample only when DWARF has a
//     non-void return type and the wasm function returns a value.
//  4. Build the common-name vocabulary (names in >= 1% of packages).
//  5. Cap samples per package at the second most frequent package's count.
//  6. Split train/validation/test by package (96/2/2), never by sample.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DATASET_PIPELINE_H
#define SNOWWHITE_DATASET_PIPELINE_H

#include "analysis/evidence.h"
#include "dataset/extract.h"
#include "frontend/corpus.h"
#include "support/fault.h"
#include "support/result.h"
#include "typelang/type.h"
#include "typelang/vocab.h"
#include "wasm/types.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snowwhite {
namespace dataset {

/// Pipeline tuning.
struct DatasetOptions {
  ExtractOptions Extract;
  double TrainFraction = 0.96;
  double ValidFraction = 0.02; ///< Remainder after train+valid is test.
  bool Deduplicate = true;
  bool CapPerPackage = true;
  double NameVocabThreshold = 0.01; ///< Fraction of packages for a "common"
                                    ///< name.
  uint64_t SplitSeed = 7;
  /// Run the dataflow analysis (analysis/analyzer.h) on every kept binary
  /// and attach per-sample evidence summaries (TypeSample::Evidence).
  /// Implied by Extract.EvidenceTokens; also needed alone for the
  /// consistency-gate precision measurement.
  bool ComputeEvidence = false;
};

/// One labeled sample: the wasm input tokens and the "rich" converted type
/// (nested names kept), from which every language variant's target sequence
/// can be derived via typelang::lowerTypeToLanguage.
struct TypeSample {
  std::vector<std::string> Input;
  typelang::Type RichType;
  wasm::ValType LowLevel = wasm::ValType::I32;
  bool IsReturn = false;
  uint32_t PackageId = 0;
  /// EXTENSION (paper future work): when the sample's type is a pointer to
  /// a defined aggregate, the shape tokens of that aggregate's fields
  /// (typelang/fields.h); empty otherwise.
  std::vector<std::string> FieldTokens;
  /// Statically-proven evidence for this query slot; populated only when
  /// DatasetOptions::ComputeEvidence (or Extract.EvidenceTokens) is set.
  analysis::QueryEvidence Evidence;
};

/// One corrupt module set aside by the pipeline instead of aborting it.
struct QuarantineEntry {
  uint32_t PackageId = 0;
  uint32_t ObjectIndex = 0;   ///< Index within the package.
  std::string Stage;          ///< Pipeline stage that rejected it.
  ErrorCode Code = ErrorCode::Unknown;
  std::string Message;        ///< Full context-chained error.
};

/// Graceful-degradation report: which inputs were skipped, where, and why.
/// Ingestion of arbitrary binaries must never let one corrupt module abort
/// the dataset build; the surviving set is bit-identical at any thread count
/// because rejection decisions replay sequentially in corpus order.
struct QuarantineReport {
  uint64_t ParseFailures = 0;  ///< wasm::readModule rejected the bytes.
  uint64_t DebugFailures = 0;  ///< DWARF sections missing or malformed.
  uint64_t WatchdogFailures = 0; ///< Per-file stall/byte-budget watchdog
                                 ///< fired (streaming ingest only).
  std::vector<QuarantineEntry> Entries;

  uint64_t total() const {
    return ParseFailures + DebugFailures + WatchdogFailures;
  }
  bool empty() const { return Entries.empty(); }
  /// Human-readable multi-line summary ("stage counts + one line per entry").
  std::string summary() const;
};

/// Size reduction achieved by deduplication (§5).
struct DedupStats {
  uint64_t ObjectsBefore = 0, ObjectsAfter = 0;
  uint64_t FunctionsBefore = 0, FunctionsAfter = 0;
  uint64_t InstructionsBefore = 0, InstructionsAfter = 0;
  uint64_t BytesBefore = 0, BytesAfter = 0;
  uint64_t ExactDuplicates = 0, NearDuplicates = 0;
  /// 64-bit hash matches whose full keys differed byte-wise; such objects
  /// are kept, never merged (collision-safe dedup).
  uint64_t SignatureCollisions = 0;
};

/// The assembled dataset.
struct Dataset {
  std::vector<TypeSample> Samples;
  std::vector<uint32_t> Train, Valid, Test; ///< Indices into Samples.
  typelang::NameVocabulary Names;
  DedupStats Dedup;
  QuarantineReport Quarantine;
  uint64_t FunctionsSkippedMismatch = 0;
  uint64_t SamplesDroppedByCap = 0;
  uint32_t NumPackages = 0;

  /// Counts parameter (IsReturn == false) samples among the given split.
  uint64_t countParams(const std::vector<uint32_t> &Split) const;
  uint64_t countReturns(const std::vector<uint32_t> &Split) const;
};

/// Runs the pipeline. Binaries are re-parsed from their serialized bytes, so
/// the wasm and DWARF readers are on the hot path exactly as they would be
/// on real binaries.
Dataset buildDataset(const frontend::Corpus &Corpus,
                     const DatasetOptions &Options = {});

/// One object file queued for streaming ingest.
struct IngestFile {
  std::string Path;    ///< Full path, opened for reading.
  std::string RelPath; ///< '/'-separated path relative to the ingest root;
                       ///< the stable identity journal records key on.
};

/// Recursively discovers "*.wasm" files under Root. Deterministic: results
/// are sorted by RelPath, so ingest order (and therefore package ids, dedup
/// decisions, and the journal) is independent of directory enumeration
/// order. Errors: IoError (unreadable root), NotFound (no matches).
Result<std::vector<IngestFile>> discoverWasmFiles(const std::string &Root);

/// Streaming-ingest tuning. The per-file budgets feed the reader's
/// ReadLimits and the stall watchdog; the journal knobs control crash-safe
/// resume.
struct StreamIngestOptions {
  DatasetOptions Dataset;
  /// Journal file path; empty disables journaling (and resume).
  std::string JournalPath;
  /// Replay the journaled prefix instead of re-deciding it.
  bool Resume = false;
  /// Publish the journal after every N files (and once at the end).
  uint64_t JournalEvery = 32;
  /// Per-file wall-clock budget in milliseconds; 0 disables the clock (the
  /// injected-stall stream still fires when configured).
  uint64_t FileBudgetMillis = 0;
  /// Per-section / whole-module decoded-byte budgets (wasm::ReadLimits).
  uint64_t MaxSectionBytes = 1ull << 30;
  uint64_t MaxModuleBytes = 1ull << 31;
  /// FileByteSource read-ahead window.
  size_t WindowBytes = 64 * 1024;
  /// Fault injector for crash ticks, stalls, and I/O faults; null uses the
  /// process-global injector.
  fault::FaultInjector *Faults = nullptr;
};

/// What streamIngest did, beyond the dataset itself.
struct StreamIngestResult {
  Dataset Data;
  uint64_t FilesProcessed = 0; ///< Decided fresh this run.
  uint64_t FilesReplayed = 0;  ///< Re-applied from the journal.
  uint64_t JournalPublishes = 0;
  /// The injected crash tick fired: the run stopped early with the journal
  /// at its last published state and Data left unfinished.
  bool Crashed = false;
  /// Non-empty: a damaged journal was moved to this path before the fresh
  /// start; JournalIssue holds why it was rejected.
  std::string JournalQuarantinedPath;
  std::optional<Error> JournalIssue;
};

/// Streaming, crash-safe corpus ingest: each file is decoded section-wise
/// through a bounded window (never fully materialized), deduped
/// collision-safely, journaled, and — after the whole corpus is decided —
/// fed through the same downstream pipeline stages as buildDataset. One
/// package per file (package id = index in Files). Decisions are strictly
/// sequential in Files order, so a resumed run is bit-identical to an
/// uninterrupted one; the parallel downstream stages keep buildDataset's
/// thread-count invariance. Fatal errors (journal/corpus divergence) abort;
/// per-file damage only ever quarantines.
Result<StreamIngestResult> streamIngest(const std::vector<IngestFile> &Files,
                                        const StreamIngestOptions &Options);

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_PIPELINE_H
