#include "dataset/pipeline.h"

#include "analysis/analyzer.h"
#include "analysis/cfg.h"
#include "analysis/paths.h"
#include "dataset/journal.h"
#include "dwarf/io.h"
#include "support/hash.h"
#include "support/io.h"
#include "support/rng.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"
#include "typelang/fields.h"
#include "typelang/from_dwarf.h"
#include "wasm/abstract.h"
#include "wasm/reader.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace snowwhite {
namespace dataset {

using frontend::CompiledObject;
using frontend::Corpus;

uint64_t Dataset::countParams(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (!Samples[Index].IsReturn)
      ++Count;
  return Count;
}

uint64_t Dataset::countReturns(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (Samples[Index].IsReturn)
      ++Count;
  return Count;
}

std::string QuarantineReport::summary() const {
  std::string Out = "quarantined " + std::to_string(total()) + " module(s): " +
                    std::to_string(ParseFailures) + " parse, " +
                    std::to_string(DebugFailures) + " debug-info";
  if (WatchdogFailures)
    Out += ", " + std::to_string(WatchdogFailures) + " watchdog";
  Out += "\n";
  for (const QuarantineEntry &Entry : Entries)
    Out += "  package " + std::to_string(Entry.PackageId) + "/obj" +
           std::to_string(Entry.ObjectIndex) + " [" + Entry.Stage + ", " +
           errorCodeName(Entry.Code) + "]: " + Entry.Message + "\n";
  return Out;
}

namespace {

/// A kept binary after dedup: parsed module + debug info + owning package.
struct KeptBinary {
  wasm::Module Mod;
  dwarf::DebugInfo Debug;
  uint32_t PackageId;
};

/// A parsed module that survived dedup, queued for the shared downstream
/// stages (debug extraction onward). Both ingest drivers — the buffered
/// buildDataset and the streaming streamIngest — reduce to this shape, so
/// everything from DWARF extraction to the split behaves identically.
struct KeptParsed {
  wasm::Module Mod;
  uint32_t PackageId = 0;
  uint32_t ObjectIndex = 0;
  uint64_t ByteSize = 0;
};

/// Runs the shared downstream stages over the deduped survivors: DWARF
/// extraction, dataflow analysis, function/subprogram matching, the name
/// vocabulary, sample materialization, the per-package cap, and the split.
/// Out must arrive with NumPackages and the parse/dedup-stage counters
/// already populated; this fills in everything else (including the final
/// ingest.* telemetry counters).
void finishDataset(std::vector<KeptParsed> KeptMods,
                   const DatasetOptions &Options, Dataset &Out) {
  ThreadPool &Pool = ThreadPool::global();

  // Per-stage time attribution: the stages run strictly in sequence, so one
  // rolling ScopedPhase slot gives each its own wall/CPU window in the
  // telemetry registry ("ingest.<stage>").
  std::unique_ptr<telemetry::ScopedPhase> Stage;
  auto BeginStage = [&Stage](const char *Name) {
    Stage.reset();
    Stage = std::make_unique<telemetry::ScopedPhase>(Name);
  };

  BeginStage("ingest.debug_extract");
  std::vector<std::optional<dwarf::DebugInfo>> Debugs(KeptMods.size());
  std::vector<std::optional<Error>> DebugErrors(KeptMods.size());
  Pool.parallelFor(0, KeptMods.size(), 1, [&](size_t Begin, size_t End) {
    for (size_t K = Begin; K < End; ++K) {
      Result<dwarf::DebugInfo> Debug =
          dwarf::extractDebugInfo(KeptMods[K].Mod);
      if (Debug.isErr()) {
        DebugErrors[K].emplace(Debug.error().withContext(
            "package " + std::to_string(KeptMods[K].PackageId) + "/obj" +
            std::to_string(KeptMods[K].ObjectIndex)));
        continue;
      }
      Debugs[K].emplace(Debug.take());
    }
  });

  std::vector<KeptBinary> Kept;
  for (size_t K = 0; K < KeptMods.size(); ++K) {
    if (!Debugs[K]) {
      ++Out.Quarantine.DebugFailures;
      Out.Quarantine.Entries.push_back(
          {KeptMods[K].PackageId, KeptMods[K].ObjectIndex, "debug-info",
           DebugErrors[K]->code(), DebugErrors[K]->message()});
      continue;
    }
    ++Out.Dedup.ObjectsAfter;
    Out.Dedup.FunctionsAfter += KeptMods[K].Mod.Functions.size();
    Out.Dedup.InstructionsAfter += KeptMods[K].Mod.countInstructions();
    Out.Dedup.BytesAfter += KeptMods[K].ByteSize;
    Kept.push_back(KeptBinary{std::move(KeptMods[K].Mod),
                              std::move(*Debugs[K]), KeptMods[K].PackageId});
  }

  // --- Stage 1b: dataflow analysis over kept binaries ---------------------
  // Summaries are a pure function of the module bytes, so per-binary slots
  // keep the results thread-count invariant. Analysis failure on a binary
  // that already passed validation is unexpected but non-fatal: the binary
  // simply contributes samples without evidence.
  BeginStage("ingest.analysis");
  bool WantEvidence = Options.ComputeEvidence || Options.Extract.EvidenceTokens;
  std::vector<std::optional<analysis::ModuleSummary>> Summaries(
      WantEvidence ? Kept.size() : 0);
  if (WantEvidence)
    Pool.parallelTasks(Kept.size(), [&](size_t BinaryIndex) {
      Result<analysis::ModuleSummary> Summary =
          analysis::analyzeModule(Kept[BinaryIndex].Mod);
      if (Summary.isOk())
        Summaries[BinaryIndex].emplace(Summary.take());
    });

  // Control-flow path tokens are per function (every query against the same
  // function shares them), so they are computed once here, not per sample.
  // A CFG build failure on a validated binary is unexpected but non-fatal:
  // the function's samples simply carry no path tokens.
  bool WantPaths = Options.Extract.PathTokens;
  std::vector<std::vector<std::vector<std::string>>> PathsPerBinary(
      WantPaths ? Kept.size() : 0);
  if (WantPaths)
    Pool.parallelTasks(Kept.size(), [&](size_t BinaryIndex) {
      const wasm::Module &Mod = Kept[BinaryIndex].Mod;
      auto &Paths = PathsPerBinary[BinaryIndex];
      Paths.resize(Mod.Functions.size());
      for (uint32_t FuncIndex = 0; FuncIndex < Mod.Functions.size();
           ++FuncIndex) {
        Result<analysis::ControlFlowGraph> Cfg =
            analysis::buildCfg(Mod, FuncIndex);
        if (Cfg.isOk())
          Paths[FuncIndex] = analysis::extractPathTokens(Cfg.value());
      }
    });

  // --- Stage 2+3: match functions to subprograms and collect raw samples -
  BeginStage("ingest.match");
  struct RawRef {
    size_t BinaryIndex;
    dwarf::DieRef TypeDie;
    uint32_t FuncIndex;
    int32_t ParamIndex; ///< -1 = return sample.
  };
  // Each binary's matches are independent; per-binary results concatenate
  // in binary order, so Raw is identical to the sequential pipeline's.
  std::vector<std::vector<RawRef>> RawPerBinary(Kept.size());
  std::vector<uint64_t> MismatchPerBinary(Kept.size(), 0);
  Pool.parallelTasks(Kept.size(), [&](size_t BinaryIndex) {
    const KeptBinary &Binary = Kept[BinaryIndex];
    for (uint32_t FuncIndex = 0; FuncIndex < Binary.Mod.Functions.size();
         ++FuncIndex) {
      const wasm::Function &Func = Binary.Mod.Functions[FuncIndex];
      dwarf::DieRef Subprogram =
          Binary.Debug.findSubprogramByLowPc(Func.CodeOffset);
      if (Subprogram == dwarf::InvalidDieRef) {
        ++MismatchPerBinary[BinaryIndex];
        continue;
      }
      const wasm::FuncType &Type = Binary.Mod.functionType(FuncIndex);
      std::vector<dwarf::DieRef> Params =
          Binary.Debug.formalParameters(Subprogram);
      if (Params.size() != Type.Params.size()) {
        // Parameter counts differ between source and binary (e.g. due to
        // optimizations): skip the whole function (§5).
        ++MismatchPerBinary[BinaryIndex];
        continue;
      }
      for (uint32_t ParamIndex = 0; ParamIndex < Params.size(); ++ParamIndex)
        RawPerBinary[BinaryIndex].push_back(
            {BinaryIndex, Binary.Debug.typeOf(Params[ParamIndex]), FuncIndex,
             static_cast<int32_t>(ParamIndex)});
      bool DwarfReturns =
          Binary.Debug.typeOf(Subprogram) != dwarf::InvalidDieRef;
      bool WasmReturns = !Type.Results.empty();
      if (DwarfReturns && WasmReturns)
        RawPerBinary[BinaryIndex].push_back(
            {BinaryIndex, Binary.Debug.typeOf(Subprogram), FuncIndex, -1});
    }
  });
  std::vector<RawRef> Raw;
  for (size_t BinaryIndex = 0; BinaryIndex < Kept.size(); ++BinaryIndex) {
    Out.FunctionsSkippedMismatch += MismatchPerBinary[BinaryIndex];
    Raw.insert(Raw.end(), RawPerBinary[BinaryIndex].begin(),
               RawPerBinary[BinaryIndex].end());
  }

  // --- Stage 4: common-name vocabulary ------------------------------------
  // Fixed-size shards collect into private vocabularies, merged in shard
  // order. NameVocabulary::merge is exactly associative (set unions and
  // integer adds), so the vocabulary matches the sequential build.
  BeginStage("ingest.names");
  constexpr size_t NameShardSize = 1024;
  size_t NameShards = (Raw.size() + NameShardSize - 1) / NameShardSize;
  std::vector<typelang::NameVocabulary> ShardNames(NameShards);
  Pool.mapReduceOrdered(
      NameShards,
      [&](size_t Shard) {
        size_t Begin = Shard * NameShardSize;
        size_t End = std::min(Begin + NameShardSize, Raw.size());
        for (size_t I = Begin; I < End; ++I)
          typelang::collectTypeNames(Kept[Raw[I].BinaryIndex].Debug,
                                     Raw[I].TypeDie,
                                     Kept[Raw[I].BinaryIndex].PackageId,
                                     ShardNames[Shard]);
      },
      [&](size_t Shard) { Out.Names.merge(ShardNames[Shard]); });
  Out.Names.finalize(Out.NumPackages, Options.NameVocabThreshold);

  // --- Materialize samples -------------------------------------------------
  // Every sample has a preallocated disjoint slot, so this is purely
  // data-parallel and order-independent.
  BeginStage("ingest.materialize");
  typelang::ConvertOptions Convert;
  Convert.KeepNestedNames = true;
  Out.Samples.resize(Raw.size());
  Pool.parallelFor(0, Raw.size(), 16, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      const RawRef &Ref = Raw[I];
      const KeptBinary &Binary = Kept[Ref.BinaryIndex];
      TypeSample &Sample = Out.Samples[I];
      Sample.PackageId = Binary.PackageId;
      Sample.RichType =
          typelang::typeFromDwarf(Binary.Debug, Ref.TypeDie, Convert);
      Sample.FieldTokens =
          typelang::fieldShapeTokens(Binary.Debug, Ref.TypeDie);
      const wasm::FuncType &Type = Binary.Mod.functionType(Ref.FuncIndex);
      if (WantEvidence && Summaries[Ref.BinaryIndex])
        Sample.Evidence = analysis::queryEvidence(
            *Summaries[Ref.BinaryIndex], Ref.FuncIndex, Ref.ParamIndex);
      const std::vector<std::string> *Paths = nullptr;
      if (WantPaths && Ref.FuncIndex < PathsPerBinary[Ref.BinaryIndex].size() &&
          !PathsPerBinary[Ref.BinaryIndex][Ref.FuncIndex].empty())
        Paths = &PathsPerBinary[Ref.BinaryIndex][Ref.FuncIndex];
      if (Ref.ParamIndex < 0) {
        Sample.IsReturn = true;
        Sample.LowLevel = Type.Results[0];
        Sample.Input = extractReturnInput(
            Binary.Mod, Ref.FuncIndex, Options.Extract,
            Sample.Evidence.Ret ? &*Sample.Evidence.Ret : nullptr, Paths);
      } else {
        Sample.IsReturn = false;
        Sample.LowLevel = Type.Params[static_cast<size_t>(Ref.ParamIndex)];
        Sample.Input = extractParamInput(
            Binary.Mod, Ref.FuncIndex, static_cast<uint32_t>(Ref.ParamIndex),
            Options.Extract,
            Sample.Evidence.Param ? &*Sample.Evidence.Param : nullptr, Paths);
      }
    }
  });

  // --- Stage 5: per-package sample cap ------------------------------------
  BeginStage("ingest.cap_and_split");
  if (Options.CapPerPackage) {
    std::map<uint32_t, uint64_t> PerPackage;
    for (const TypeSample &Sample : Out.Samples)
      ++PerPackage[Sample.PackageId];
    if (PerPackage.size() >= 2) {
      std::vector<uint64_t> Counts;
      for (const auto &[PackageId, Count] : PerPackage)
        Counts.push_back(Count);
      std::sort(Counts.rbegin(), Counts.rend());
      uint64_t Cap = Counts[1]; // Second most frequent package's count.
      std::map<uint32_t, uint64_t> Taken;
      std::vector<TypeSample> Capped;
      Capped.reserve(Out.Samples.size());
      for (TypeSample &Sample : Out.Samples) {
        if (Taken[Sample.PackageId] >= Cap) {
          ++Out.SamplesDroppedByCap;
          continue;
        }
        ++Taken[Sample.PackageId];
        Capped.push_back(std::move(Sample));
      }
      Out.Samples = std::move(Capped);
    }
  }

  // --- Stage 6: split by package -------------------------------------------
  // Only packages that actually contributed samples matter for the split;
  // fully-deduplicated packages would otherwise eat a validation/test slot.
  std::set<uint32_t> Contributing;
  for (const TypeSample &Sample : Out.Samples)
    Contributing.insert(Sample.PackageId);
  std::vector<uint32_t> PackageIds(Contributing.begin(), Contributing.end());
  Rng SplitRng(Options.SplitSeed);
  SplitRng.shuffle(PackageIds);
  size_t NumTrain = static_cast<size_t>(Options.TrainFraction *
                                        static_cast<double>(PackageIds.size()));
  size_t NumValid = static_cast<size_t>(Options.ValidFraction *
                                        static_cast<double>(PackageIds.size()));
  if (PackageIds.size() >= 3) {
    // Guarantee non-empty validation and test portions.
    NumValid = std::max<size_t>(NumValid, 1);
    if (NumTrain + NumValid >= PackageIds.size())
      NumTrain = PackageIds.size() - NumValid - 1;
  }
  enum class SplitKind : uint8_t { Train, Valid, Test };
  std::map<uint32_t, SplitKind> SplitOf;
  for (size_t I = 0; I < PackageIds.size(); ++I) {
    SplitKind Kind = I < NumTrain ? SplitKind::Train
                     : I < NumTrain + NumValid ? SplitKind::Valid
                                               : SplitKind::Test;
    SplitOf[PackageIds[I]] = Kind;
  }
  for (uint32_t Index = 0; Index < Out.Samples.size(); ++Index) {
    switch (SplitOf[Out.Samples[Index].PackageId]) {
    case SplitKind::Train:
      Out.Train.push_back(Index);
      break;
    case SplitKind::Valid:
      Out.Valid.push_back(Index);
      break;
    case SplitKind::Test:
      Out.Test.push_back(Index);
      break;
    }
  }
  Stage.reset();

  telemetry::counter("ingest.quarantine.parse_failures")
      .add(Out.Quarantine.ParseFailures);
  telemetry::counter("ingest.quarantine.debug_failures")
      .add(Out.Quarantine.DebugFailures);
  telemetry::counter("ingest.quarantine.watchdog_failures")
      .add(Out.Quarantine.WatchdogFailures);
  telemetry::counter("ingest.duplicates_dropped")
      .add(Out.Dedup.ExactDuplicates + Out.Dedup.NearDuplicates);
  telemetry::counter("ingest.objects_kept").add(Out.Dedup.ObjectsAfter);
  telemetry::counter("ingest.functions_skipped_mismatch")
      .add(Out.FunctionsSkippedMismatch);
  telemetry::counter("ingest.samples_dropped_by_cap")
      .add(Out.SamplesDroppedByCap);
  telemetry::counter("ingest.samples").add(Out.Samples.size());
}

} // namespace

Dataset buildDataset(const Corpus &Corpus, const DatasetOptions &Options) {
  Dataset Out;
  Out.NumPackages = static_cast<uint32_t>(Corpus.Packages.size());

  telemetry::ScopedPhase IngestPhase("ingest.total");
  std::unique_ptr<telemetry::ScopedPhase> Stage =
      std::make_unique<telemetry::ScopedPhase>("ingest.parse_dedup");

  // --- Stage 1: deduplication over serialized binaries -------------------
  // Parsing and hashing every object is the expensive part and is pure, so
  // it fans out over the pool into per-object slots. The dedup *decisions*
  // (hash-set insertions) then replay sequentially in corpus order, making
  // the kept set bit-identical to the sequential pipeline for any thread
  // count.
  ThreadPool &Pool = ThreadPool::global();

  struct FlatObject {
    const CompiledObject *Object;
    uint32_t PackageId;
    uint32_t ObjectIndex; ///< Index within the owning package.
  };
  std::vector<FlatObject> Flat;
  for (const frontend::Package &Pkg : Corpus.Packages)
    for (size_t Index = 0; Index < Pkg.Objects.size(); ++Index)
      Flat.push_back({&Pkg.Objects[Index], Pkg.Id,
                      static_cast<uint32_t>(Index)});

  // Parse results and errors land in disjoint per-object slots; quarantine
  // decisions (like dedup decisions) replay sequentially in corpus order, so
  // the surviving set and the report are thread-count independent.
  std::vector<std::optional<wasm::Module>> Mods(Flat.size());
  std::vector<std::optional<Error>> ParseErrors(Flat.size());
  std::vector<uint64_t> ExactHashes(Flat.size(), 0);
  std::vector<uint64_t> ApproxSignatures(Flat.size(), 0);
  std::vector<std::string> Abstractions(Flat.size());
  Pool.parallelFor(0, Flat.size(), 1, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      // The pipeline consumes serialized bytes, as it would real binaries.
      Result<wasm::Module> Parsed = wasm::readModule(Flat[I].Object->Bytes);
      if (Parsed.isErr()) {
        ParseErrors[I].emplace(Parsed.error().withContext(
            "package " + std::to_string(Flat[I].PackageId) + "/obj" +
            std::to_string(Flat[I].ObjectIndex)));
        continue;
      }
      Mods[I].emplace(Parsed.take());
      if (Options.Deduplicate) {
        ExactHashes[I] = hashVector(Flat[I].Object->Bytes);
        // Keep the full abstraction string alongside its hash: a 64-bit
        // signature match alone is not proof of a near-duplicate, so the
        // sequential replay below confirms byte-wise before dropping.
        Abstractions[I] = wasm::moduleAbstraction(*Mods[I]);
        ApproxSignatures[I] = hashString(Abstractions[I]);
      }
    }
  });

  SignatureSet SeenExact;
  SignatureSet SeenApprox;
  std::vector<size_t> KeptFlat; ///< Indices into Flat/Mods surviving dedup.
  for (size_t I = 0; I < Flat.size(); ++I) {
    const CompiledObject &Object = *Flat[I].Object;
    ++Out.Dedup.ObjectsBefore;
    Out.Dedup.FunctionsBefore += Object.Mod.Functions.size();
    Out.Dedup.InstructionsBefore += Object.Mod.countInstructions();
    Out.Dedup.BytesBefore += Object.Bytes.size();
    if (!Mods[I]) {
      ++Out.Quarantine.ParseFailures;
      Out.Quarantine.Entries.push_back(
          {Flat[I].PackageId, Flat[I].ObjectIndex, "parse",
           ParseErrors[I]->code(), ParseErrors[I]->message()});
      continue;
    }
    if (Options.Deduplicate) {
      // Hash match alone never drops a module: both sets fall back to a
      // byte-wise key comparison, so a 64-bit collision is kept (and
      // counted) instead of being silently merged with a distinct module.
      std::string ExactKey(Object.Bytes.begin(), Object.Bytes.end());
      if (SeenExact.insert(ExactHashes[I], std::move(ExactKey)) ==
          SignatureSet::Insert::Duplicate) {
        ++Out.Dedup.ExactDuplicates;
        continue;
      }
      if (SeenApprox.insert(ApproxSignatures[I],
                            std::move(Abstractions[I])) ==
          SignatureSet::Insert::Duplicate) {
        ++Out.Dedup.NearDuplicates;
        continue;
      }
    }
    KeptFlat.push_back(I);
  }
  Out.Dedup.SignatureCollisions =
      SeenExact.collisions() + SeenApprox.collisions();
  if (Out.Dedup.SignatureCollisions)
    telemetry::counter("ingest.signature_collisions")
        .add(Out.Dedup.SignatureCollisions);

  std::vector<KeptParsed> KeptMods;
  KeptMods.reserve(KeptFlat.size());
  for (size_t I : KeptFlat)
    KeptMods.push_back({std::move(*Mods[I]), Flat[I].PackageId,
                        Flat[I].ObjectIndex, Flat[I].Object->Bytes.size()});
  Stage.reset();

  finishDataset(std::move(KeptMods), Options, Out);
  return Out;
}

Result<std::vector<IngestFile>> discoverWasmFiles(const std::string &Root) {
  namespace fs = std::filesystem;
  std::error_code DirError;
  std::vector<IngestFile> Files;
  fs::recursive_directory_iterator It(Root, DirError), EndIt;
  if (DirError)
    return Error(ErrorCode::IoError, "cannot list directory '" + Root +
                                         "': " + DirError.message());
  for (; It != EndIt; It.increment(DirError)) {
    if (DirError)
      return Error(ErrorCode::IoError, "cannot list directory '" + Root +
                                           "': " + DirError.message());
    std::error_code TypeError;
    if (!It->is_regular_file(TypeError) ||
        It->path().extension() != ".wasm")
      continue;
    IngestFile File;
    File.Path = It->path().string();
    File.RelPath = It->path().lexically_relative(Root).generic_string();
    Files.push_back(std::move(File));
  }
  if (Files.empty())
    return Error(ErrorCode::NotFound, "no .wasm files under '" + Root + "'");
  std::sort(Files.begin(), Files.end(),
            [](const IngestFile &A, const IngestFile &B) {
              return A.RelPath < B.RelPath;
            });
  return Files;
}

namespace {

/// Digest over the decision-relevant ingest knobs. A journal written under
/// different budgets (or dedup off) would have decided differently, so
/// resume refuses to mix them.
uint64_t ingestConfigDigest(const StreamIngestOptions &Options) {
  uint64_t Digest = hashString("snowwhite-ingest-journal");
  Digest = hashCombine(Digest, Options.Dataset.Deduplicate ? 1 : 0);
  Digest = hashCombine(Digest, Options.FileBudgetMillis);
  Digest = hashCombine(Digest, Options.MaxSectionBytes);
  Digest = hashCombine(Digest, Options.MaxModuleBytes);
  return Digest;
}

/// Chunked byte-wise comparison of two files through bounded windows. This
/// is the collision-safety confirm for the streaming exact dedup: a 64-bit
/// hash match alone never drops a file, and confirming by re-reading costs
/// memory proportional to the window, not the file.
Result<bool> fileContentsEqual(const std::string &PathA,
                               const std::string &PathB, size_t WindowBytes,
                               fault::FaultInjector *Faults) {
  io::FileByteSource A(PathA, WindowBytes, Faults);
  io::FileByteSource B(PathB, WindowBytes, Faults);
  auto FillChunk = [](io::ByteSource &Source, uint8_t *Buf,
                      size_t N) -> Result<size_t> {
    size_t Got = 0;
    while (Got < N) {
      Result<size_t> R = Source.readSome(Buf + Got, N - Got);
      if (R.isErr())
        return R;
      if (*R == 0)
        break;
      Got += *R;
    }
    return Got;
  };
  uint8_t BufA[4096], BufB[4096];
  for (;;) {
    Result<size_t> GotA = FillChunk(A, BufA, sizeof(BufA));
    if (GotA.isErr())
      return GotA.error();
    Result<size_t> GotB = FillChunk(B, BufB, sizeof(BufB));
    if (GotB.isErr())
      return GotB.error();
    if (*GotA != *GotB)
      return false;
    if (*GotA == 0)
      return true;
    if (!std::equal(BufA, BufA + *GotA, BufB))
      return false;
  }
}

} // namespace

Result<StreamIngestResult> streamIngest(const std::vector<IngestFile> &Files,
                                        const StreamIngestOptions &Options) {
  StreamIngestResult Out;
  Dataset &Data = Out.Data;
  Data.NumPackages = static_cast<uint32_t>(Files.size());

  telemetry::ScopedPhase IngestPhase("ingest.total");
  std::unique_ptr<telemetry::ScopedPhase> Stage =
      std::make_unique<telemetry::ScopedPhase>("ingest.stream_parse");
  fault::FaultInjector *Faults =
      Options.Faults ? Options.Faults : fault::globalInjector();
  bool Journaling = !Options.JournalPath.empty();
  uint64_t ConfigDigest = ingestConfigDigest(Options);

  // --- Resume: load the journal and validate it against this corpus ------
  journal::IngestJournal J;
  J.ConfigDigest = ConfigDigest;
  size_t ReplayCount = 0;
  if (Journaling && Options.Resume) {
    Result<journal::IngestJournal> Loaded =
        journal::loadJournal(Options.JournalPath, Faults);
    std::optional<Error> Reject;
    if (Loaded.isErr()) {
      // A missing journal just means nothing to resume; anything else is a
      // damaged journal and gets quarantined aside.
      if (Loaded.error().code() != ErrorCode::IoError)
        Reject = Loaded.error();
    } else if (Loaded->ConfigDigest != ConfigDigest) {
      Reject = Error(ErrorCode::Unsupported,
                     "journal '" + Options.JournalPath +
                         "': config digest mismatch (ingest options changed)");
    } else if (Loaded->Records.size() > Files.size()) {
      Reject = Error(ErrorCode::Unsupported,
                     "journal '" + Options.JournalPath +
                         "': more records than discovered files (corpus "
                         "changed)");
    } else {
      for (size_t I = 0; I < Loaded->Records.size(); ++I)
        if (Loaded->Records[I].RelPath != Files[I].RelPath) {
          Reject = Error(ErrorCode::Unsupported,
                         "journal '" + Options.JournalPath + "': record " +
                             std::to_string(I) + " names '" +
                             Loaded->Records[I].RelPath +
                             "' but the corpus has '" + Files[I].RelPath +
                             "' (corpus changed)");
          break;
        }
    }
    if (Reject) {
      Out.JournalIssue = *Reject;
      Out.JournalQuarantinedPath =
          journal::quarantineJournal(Options.JournalPath);
      telemetry::counter("ingest.journal.quarantined").add(1);
    } else if (Loaded.isOk()) {
      J.Records = std::move(Loaded->Records);
      ReplayCount = J.Records.size();
    }
  }

  // --- Dedup state ---------------------------------------------------------
  // Near dedup keeps the canonical abstraction strings (small) in a
  // collision-checked SignatureSet, exactly like buildDataset. Exact dedup
  // cannot afford full-file keys in a streaming ingest, so it buckets file
  // indices by streaming hash and confirms candidate duplicates by chunked
  // re-read — same collision-safety guarantee, window-bounded memory.
  SignatureSet SeenApprox;
  std::unordered_map<uint64_t, std::vector<size_t>> ExactBuckets;
  uint64_t ExactCollisions = 0;
  auto InsertExact = [&](size_t FileIndex, uint64_t Hash) {
    std::vector<size_t> &Bucket = ExactBuckets[Hash];
    if (!Bucket.empty())
      ++ExactCollisions;
    Bucket.push_back(FileIndex);
  };

  std::vector<KeptParsed> KeptMods;

  auto Publish = [&]() -> Result<void> {
    if (!Journaling)
      return {};
    Result<void> Saved = journal::saveJournal(Options.JournalPath, J, Faults);
    if (Saved.isOk()) {
      ++Out.JournalPublishes;
      telemetry::counter("ingest.journal.publishes").add(1);
    }
    return Saved;
  };

  // Applies a decided record's stats + quarantine entries; identical for
  // fresh and replayed records, which is what makes resume bit-identical.
  auto ApplyRecord = [&](size_t FileIndex, const journal::FileRecord &Rec) {
    ++Data.Dedup.ObjectsBefore;
    Data.Dedup.BytesBefore += Rec.Bytes;
    Data.Dedup.FunctionsBefore += Rec.Functions;
    Data.Dedup.InstructionsBefore += Rec.Instructions;
    switch (Rec.Outcome) {
    case journal::FileOutcome::Kept:
      break; // After-side stats accrue in the debug-extract stage.
    case journal::FileOutcome::QuarantinedParse:
      ++Data.Quarantine.ParseFailures;
      Data.Quarantine.Entries.push_back({static_cast<uint32_t>(FileIndex), 0,
                                         Rec.Stage, Rec.Code, Rec.Message});
      break;
    case journal::FileOutcome::QuarantinedWatchdog:
      ++Data.Quarantine.WatchdogFailures;
      Data.Quarantine.Entries.push_back({static_cast<uint32_t>(FileIndex), 0,
                                         Rec.Stage, Rec.Code, Rec.Message});
      break;
    case journal::FileOutcome::DuplicateExact:
      ++Data.Dedup.ExactDuplicates;
      break;
    case journal::FileOutcome::DuplicateNear:
      ++Data.Dedup.NearDuplicates;
      break;
    }
  };

  // Re-applies a journaled Kept decision: re-read and re-parse (downstream
  // stages need the module anyway), verify the file still matches its
  // journaled hash, and rebuild the dedup-set state byte-exactly.
  auto ReplayKept = [&](size_t FileIndex,
                        const journal::FileRecord &Rec) -> Result<void> {
    io::FileByteSource Source(Files[FileIndex].Path, Options.WindowBytes,
                              Faults);
    wasm::ReadLimits Limits;
    Limits.MaxSectionBytes = Options.MaxSectionBytes;
    Limits.MaxModuleBytes = Options.MaxModuleBytes;
    Result<wasm::Module> Parsed = wasm::readModuleStreamed(Source, Limits);
    if (Parsed.isErr())
      return Parsed.error().withContext(
          "resume: journaled-kept file '" + Files[FileIndex].RelPath +
          "' no longer parses");
    if (Source.runningHash() != Rec.ExactHash)
      return Error(ErrorCode::ChecksumMismatch,
                   "resume: file '" + Files[FileIndex].RelPath +
                       "' changed since it was journaled");
    wasm::Module Mod = Parsed.take();
    if (Options.Dataset.Deduplicate) {
      InsertExact(FileIndex, Rec.ExactHash);
      std::string Abstraction = wasm::moduleAbstraction(Mod);
      if (hashString(Abstraction) != Rec.ApproxHash)
        return Error(ErrorCode::ChecksumMismatch,
                     "resume: file '" + Files[FileIndex].RelPath +
                         "' abstraction changed since it was journaled");
      SeenApprox.insert(Rec.ApproxHash, std::move(Abstraction));
    }
    KeptMods.push_back({std::move(Mod), static_cast<uint32_t>(FileIndex), 0,
                        Rec.Bytes});
    return {};
  };

  // Decides one not-yet-journaled file: streamed parse under the per-file
  // watchdog and byte budgets, then collision-safe dedup.
  auto DecideFile = [&](size_t FileIndex,
                        journal::FileRecord &Rec) -> Result<void> {
    const IngestFile &File = Files[FileIndex];
    Rec.RelPath = File.RelPath;
    io::FileByteSource Source(File.Path, Options.WindowBytes, Faults);
    fault::Deadline Watchdog(Options.FileBudgetMillis, Faults);
    wasm::ReadLimits Limits;
    Limits.MaxSectionBytes = Options.MaxSectionBytes;
    Limits.MaxModuleBytes = Options.MaxModuleBytes;
    Limits.Watchdog = &Watchdog;
    Result<wasm::Module> Parsed = wasm::readModuleStreamed(Source, Limits);
    Rec.Bytes = Source.consumed();
    telemetry::histogram("ingest.stream.file_bytes").record(Rec.Bytes);
    if (Parsed.isErr()) {
      const Error &E = Parsed.error();
      // Timeout and the reader's byte-budget breaches are the watchdog's
      // verdicts; everything else is ordinary parse damage.
      bool Watchdogged =
          E.code() == ErrorCode::Timeout ||
          (E.code() == ErrorCode::LimitExceeded &&
           E.message().find("byte budget") != std::string::npos);
      Rec.Outcome = Watchdogged ? journal::FileOutcome::QuarantinedWatchdog
                                : journal::FileOutcome::QuarantinedParse;
      Rec.Code = E.code();
      Rec.Stage = Watchdogged ? "watchdog" : "parse";
      Rec.Message = E.withContext(File.RelPath).message();
      return {};
    }
    wasm::Module Mod = Parsed.take();
    Rec.ExactHash = Source.runningHash();
    Rec.Functions = Mod.Functions.size();
    Rec.Instructions = Mod.countInstructions();
    if (Options.Dataset.Deduplicate) {
      std::vector<size_t> &Bucket = ExactBuckets[Rec.ExactHash];
      for (size_t PriorIndex : Bucket) {
        Result<bool> Same =
            fileContentsEqual(Files[PriorIndex].Path, File.Path,
                              Options.WindowBytes, Faults);
        if (Same.isErr())
          return Same.error().withContext("dedup confirm for '" +
                                          File.RelPath + "'");
        if (*Same) {
          Rec.Outcome = journal::FileOutcome::DuplicateExact;
          return {};
        }
      }
      InsertExact(FileIndex, Rec.ExactHash);
      std::string Abstraction = wasm::moduleAbstraction(Mod);
      Rec.ApproxHash = hashString(Abstraction);
      if (SeenApprox.insert(Rec.ApproxHash, std::move(Abstraction)) ==
          SignatureSet::Insert::Duplicate) {
        Rec.Outcome = journal::FileOutcome::DuplicateNear;
        return {};
      }
    }
    Rec.Outcome = journal::FileOutcome::Kept;
    KeptMods.push_back({std::move(Mod), static_cast<uint32_t>(FileIndex), 0,
                        Rec.Bytes});
    return {};
  };

  // --- The per-file decision loop (strictly sequential in Files order) ----
  for (size_t I = 0; I < Files.size(); ++I) {
    if (I < ReplayCount) {
      const journal::FileRecord &Rec = J.Records[I];
      if (Rec.Outcome == journal::FileOutcome::Kept) {
        Result<void> Replayed = ReplayKept(I, Rec);
        if (Replayed.isErr())
          return Replayed.error();
      } else if (Rec.Outcome == journal::FileOutcome::DuplicateNear &&
                 Options.Dataset.Deduplicate) {
        // A near-duplicate's exact hash entered the exact set before the
        // near check dropped it; replay must rebuild that state too.
        InsertExact(I, Rec.ExactHash);
      }
      ApplyRecord(I, Rec);
      ++Out.FilesReplayed;
      continue;
    }
    journal::FileRecord Rec;
    Result<void> Decided = DecideFile(I, Rec);
    if (Decided.isErr())
      return Decided.error();
    J.Records.push_back(Rec);
    ApplyRecord(I, Rec);
    ++Out.FilesProcessed;
    if (Journaling && Options.JournalEvery > 0 &&
        J.Records.size() % Options.JournalEvery == 0) {
      Result<void> Published = Publish();
      if (Published.isErr())
        return Published.error();
    }
    // The crash clock ticks once per decided file; when it fires the run
    // stops cold — no final publish — exactly like a kill -9 between
    // journal cadences.
    if (Faults && Faults->tick()) {
      Out.Crashed = true;
      telemetry::counter("ingest.crashes_injected").add(1);
      return Out;
    }
  }

  Result<void> Published = Publish();
  if (Published.isErr())
    return Published.error();

  Data.Dedup.SignatureCollisions = ExactCollisions + SeenApprox.collisions();
  if (Data.Dedup.SignatureCollisions)
    telemetry::counter("ingest.signature_collisions")
        .add(Data.Dedup.SignatureCollisions);
  telemetry::counter("ingest.stream.files_processed").add(Out.FilesProcessed);
  telemetry::counter("ingest.stream.files_replayed").add(Out.FilesReplayed);
  Stage.reset();

  finishDataset(std::move(KeptMods), Options.Dataset, Data);
  return Out;
}

} // namespace dataset
} // namespace snowwhite
