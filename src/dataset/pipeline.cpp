#include "dataset/pipeline.h"

#include "dwarf/io.h"
#include "support/hash.h"
#include "support/rng.h"
#include "typelang/fields.h"
#include "typelang/from_dwarf.h"
#include "wasm/abstract.h"
#include "wasm/reader.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>

namespace snowwhite {
namespace dataset {

using frontend::CompiledObject;
using frontend::Corpus;

uint64_t Dataset::countParams(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (!Samples[Index].IsReturn)
      ++Count;
  return Count;
}

uint64_t Dataset::countReturns(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (Samples[Index].IsReturn)
      ++Count;
  return Count;
}

namespace {

/// A kept binary after dedup: parsed module + debug info + owning package.
struct KeptBinary {
  wasm::Module Mod;
  dwarf::DebugInfo Debug;
  uint32_t PackageId;
};

} // namespace

Dataset buildDataset(const Corpus &Corpus, const DatasetOptions &Options) {
  Dataset Out;
  Out.NumPackages = static_cast<uint32_t>(Corpus.Packages.size());

  // --- Stage 1: deduplication over serialized binaries -------------------
  std::unordered_set<uint64_t> SeenExact;
  std::unordered_set<uint64_t> SeenApprox;
  std::vector<KeptBinary> Kept;
  for (const frontend::Package &Pkg : Corpus.Packages) {
    for (const CompiledObject &Object : Pkg.Objects) {
      ++Out.Dedup.ObjectsBefore;
      Out.Dedup.FunctionsBefore += Object.Mod.Functions.size();
      Out.Dedup.InstructionsBefore += Object.Mod.countInstructions();
      Out.Dedup.BytesBefore += Object.Bytes.size();

      // The pipeline consumes serialized bytes, as it would real binaries.
      Result<wasm::Module> Parsed = wasm::readModule(Object.Bytes);
      assert(Parsed.isOk() && "corpus produced unreadable binary");
      if (Parsed.isErr())
        continue;
      wasm::Module Mod = Parsed.take();

      if (Options.Deduplicate) {
        uint64_t ExactHash = hashVector(Object.Bytes);
        if (!SeenExact.insert(ExactHash).second) {
          ++Out.Dedup.ExactDuplicates;
          continue;
        }
        uint64_t Approx = wasm::approximateModuleSignature(Mod);
        if (!SeenApprox.insert(Approx).second) {
          ++Out.Dedup.NearDuplicates;
          continue;
        }
      }

      Result<dwarf::DebugInfo> Debug = dwarf::extractDebugInfo(Mod);
      assert(Debug.isOk() && "corpus binary without debug info");
      if (Debug.isErr())
        continue;

      ++Out.Dedup.ObjectsAfter;
      Out.Dedup.FunctionsAfter += Mod.Functions.size();
      Out.Dedup.InstructionsAfter += Mod.countInstructions();
      Out.Dedup.BytesAfter += Object.Bytes.size();
      Kept.push_back(KeptBinary{std::move(Mod), Debug.take(), Pkg.Id});
    }
  }

  // --- Stage 2+3: match functions to subprograms and collect raw samples -
  struct RawRef {
    size_t BinaryIndex;
    dwarf::DieRef TypeDie;
    uint32_t FuncIndex;
    int32_t ParamIndex; ///< -1 = return sample.
  };
  std::vector<RawRef> Raw;
  for (size_t BinaryIndex = 0; BinaryIndex < Kept.size(); ++BinaryIndex) {
    const KeptBinary &Binary = Kept[BinaryIndex];
    for (uint32_t FuncIndex = 0; FuncIndex < Binary.Mod.Functions.size();
         ++FuncIndex) {
      const wasm::Function &Func = Binary.Mod.Functions[FuncIndex];
      dwarf::DieRef Subprogram =
          Binary.Debug.findSubprogramByLowPc(Func.CodeOffset);
      if (Subprogram == dwarf::InvalidDieRef) {
        ++Out.FunctionsSkippedMismatch;
        continue;
      }
      const wasm::FuncType &Type = Binary.Mod.functionType(FuncIndex);
      std::vector<dwarf::DieRef> Params =
          Binary.Debug.formalParameters(Subprogram);
      if (Params.size() != Type.Params.size()) {
        // Parameter counts differ between source and binary (e.g. due to
        // optimizations): skip the whole function (§5).
        ++Out.FunctionsSkippedMismatch;
        continue;
      }
      for (uint32_t ParamIndex = 0; ParamIndex < Params.size(); ++ParamIndex)
        Raw.push_back({BinaryIndex,
                       Binary.Debug.typeOf(Params[ParamIndex]), FuncIndex,
                       static_cast<int32_t>(ParamIndex)});
      bool DwarfReturns =
          Binary.Debug.typeOf(Subprogram) != dwarf::InvalidDieRef;
      bool WasmReturns = !Type.Results.empty();
      if (DwarfReturns && WasmReturns)
        Raw.push_back(
            {BinaryIndex, Binary.Debug.typeOf(Subprogram), FuncIndex, -1});
    }
  }

  // --- Stage 4: common-name vocabulary ------------------------------------
  for (const RawRef &Ref : Raw)
    typelang::collectTypeNames(Kept[Ref.BinaryIndex].Debug, Ref.TypeDie,
                               Kept[Ref.BinaryIndex].PackageId, Out.Names);
  Out.Names.finalize(Out.NumPackages, Options.NameVocabThreshold);

  // --- Materialize samples -------------------------------------------------
  typelang::ConvertOptions Convert;
  Convert.KeepNestedNames = true;
  for (const RawRef &Ref : Raw) {
    const KeptBinary &Binary = Kept[Ref.BinaryIndex];
    TypeSample Sample;
    Sample.PackageId = Binary.PackageId;
    Sample.RichType =
        typelang::typeFromDwarf(Binary.Debug, Ref.TypeDie, Convert);
    Sample.FieldTokens =
        typelang::fieldShapeTokens(Binary.Debug, Ref.TypeDie);
    const wasm::FuncType &Type = Binary.Mod.functionType(Ref.FuncIndex);
    if (Ref.ParamIndex < 0) {
      Sample.IsReturn = true;
      Sample.LowLevel = Type.Results[0];
      Sample.Input =
          extractReturnInput(Binary.Mod, Ref.FuncIndex, Options.Extract);
    } else {
      Sample.IsReturn = false;
      Sample.LowLevel = Type.Params[static_cast<size_t>(Ref.ParamIndex)];
      Sample.Input = extractParamInput(Binary.Mod, Ref.FuncIndex,
                                       static_cast<uint32_t>(Ref.ParamIndex),
                                       Options.Extract);
    }
    Out.Samples.push_back(std::move(Sample));
  }

  // --- Stage 5: per-package sample cap ------------------------------------
  if (Options.CapPerPackage) {
    std::map<uint32_t, uint64_t> PerPackage;
    for (const TypeSample &Sample : Out.Samples)
      ++PerPackage[Sample.PackageId];
    if (PerPackage.size() >= 2) {
      std::vector<uint64_t> Counts;
      for (const auto &[PackageId, Count] : PerPackage)
        Counts.push_back(Count);
      std::sort(Counts.rbegin(), Counts.rend());
      uint64_t Cap = Counts[1]; // Second most frequent package's count.
      std::map<uint32_t, uint64_t> Taken;
      std::vector<TypeSample> Capped;
      Capped.reserve(Out.Samples.size());
      for (TypeSample &Sample : Out.Samples) {
        if (Taken[Sample.PackageId] >= Cap) {
          ++Out.SamplesDroppedByCap;
          continue;
        }
        ++Taken[Sample.PackageId];
        Capped.push_back(std::move(Sample));
      }
      Out.Samples = std::move(Capped);
    }
  }

  // --- Stage 6: split by package -------------------------------------------
  // Only packages that actually contributed samples matter for the split;
  // fully-deduplicated packages would otherwise eat a validation/test slot.
  std::set<uint32_t> Contributing;
  for (const TypeSample &Sample : Out.Samples)
    Contributing.insert(Sample.PackageId);
  std::vector<uint32_t> PackageIds(Contributing.begin(), Contributing.end());
  Rng SplitRng(Options.SplitSeed);
  SplitRng.shuffle(PackageIds);
  size_t NumTrain = static_cast<size_t>(Options.TrainFraction *
                                        static_cast<double>(PackageIds.size()));
  size_t NumValid = static_cast<size_t>(Options.ValidFraction *
                                        static_cast<double>(PackageIds.size()));
  if (PackageIds.size() >= 3) {
    // Guarantee non-empty validation and test portions.
    NumValid = std::max<size_t>(NumValid, 1);
    if (NumTrain + NumValid >= PackageIds.size())
      NumTrain = PackageIds.size() - NumValid - 1;
  }
  enum class SplitKind : uint8_t { Train, Valid, Test };
  std::map<uint32_t, SplitKind> SplitOf;
  for (size_t I = 0; I < PackageIds.size(); ++I) {
    SplitKind Kind = I < NumTrain ? SplitKind::Train
                     : I < NumTrain + NumValid ? SplitKind::Valid
                                               : SplitKind::Test;
    SplitOf[PackageIds[I]] = Kind;
  }
  for (uint32_t Index = 0; Index < Out.Samples.size(); ++Index) {
    switch (SplitOf[Out.Samples[Index].PackageId]) {
    case SplitKind::Train:
      Out.Train.push_back(Index);
      break;
    case SplitKind::Valid:
      Out.Valid.push_back(Index);
      break;
    case SplitKind::Test:
      Out.Test.push_back(Index);
      break;
    }
  }
  return Out;
}

} // namespace dataset
} // namespace snowwhite
