#include "dataset/pipeline.h"

#include "analysis/analyzer.h"
#include "dwarf/io.h"
#include "support/hash.h"
#include "support/rng.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"
#include "typelang/fields.h"
#include "typelang/from_dwarf.h"
#include "wasm/abstract.h"
#include "wasm/reader.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>

namespace snowwhite {
namespace dataset {

using frontend::CompiledObject;
using frontend::Corpus;

uint64_t Dataset::countParams(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (!Samples[Index].IsReturn)
      ++Count;
  return Count;
}

uint64_t Dataset::countReturns(const std::vector<uint32_t> &Split) const {
  uint64_t Count = 0;
  for (uint32_t Index : Split)
    if (Samples[Index].IsReturn)
      ++Count;
  return Count;
}

std::string QuarantineReport::summary() const {
  std::string Out = "quarantined " + std::to_string(total()) + " module(s): " +
                    std::to_string(ParseFailures) + " parse, " +
                    std::to_string(DebugFailures) + " debug-info\n";
  for (const QuarantineEntry &Entry : Entries)
    Out += "  package " + std::to_string(Entry.PackageId) + "/obj" +
           std::to_string(Entry.ObjectIndex) + " [" + Entry.Stage + ", " +
           errorCodeName(Entry.Code) + "]: " + Entry.Message + "\n";
  return Out;
}

namespace {

/// A kept binary after dedup: parsed module + debug info + owning package.
struct KeptBinary {
  wasm::Module Mod;
  dwarf::DebugInfo Debug;
  uint32_t PackageId;
};

} // namespace

Dataset buildDataset(const Corpus &Corpus, const DatasetOptions &Options) {
  Dataset Out;
  Out.NumPackages = static_cast<uint32_t>(Corpus.Packages.size());

  // Per-stage time attribution: the stages run strictly in sequence, so one
  // rolling ScopedPhase slot gives each its own wall/CPU window in the
  // telemetry registry ("ingest.<stage>").
  telemetry::ScopedPhase IngestPhase("ingest.total");
  std::unique_ptr<telemetry::ScopedPhase> Stage;
  auto BeginStage = [&Stage](const char *Name) {
    Stage.reset();
    Stage = std::make_unique<telemetry::ScopedPhase>(Name);
  };
  BeginStage("ingest.parse_dedup");

  // --- Stage 1: deduplication over serialized binaries -------------------
  // Parsing and hashing every object is the expensive part and is pure, so
  // it fans out over the pool into per-object slots. The dedup *decisions*
  // (hash-set insertions) then replay sequentially in corpus order, making
  // the kept set bit-identical to the sequential pipeline for any thread
  // count.
  ThreadPool &Pool = ThreadPool::global();

  struct FlatObject {
    const CompiledObject *Object;
    uint32_t PackageId;
    uint32_t ObjectIndex; ///< Index within the owning package.
  };
  std::vector<FlatObject> Flat;
  for (const frontend::Package &Pkg : Corpus.Packages)
    for (size_t Index = 0; Index < Pkg.Objects.size(); ++Index)
      Flat.push_back({&Pkg.Objects[Index], Pkg.Id,
                      static_cast<uint32_t>(Index)});

  // Parse results and errors land in disjoint per-object slots; quarantine
  // decisions (like dedup decisions) replay sequentially in corpus order, so
  // the surviving set and the report are thread-count independent.
  std::vector<std::optional<wasm::Module>> Mods(Flat.size());
  std::vector<std::optional<Error>> ParseErrors(Flat.size());
  std::vector<uint64_t> ExactHashes(Flat.size(), 0);
  std::vector<uint64_t> ApproxSignatures(Flat.size(), 0);
  std::vector<std::string> Abstractions(Flat.size());
  Pool.parallelFor(0, Flat.size(), 1, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      // The pipeline consumes serialized bytes, as it would real binaries.
      Result<wasm::Module> Parsed = wasm::readModule(Flat[I].Object->Bytes);
      if (Parsed.isErr()) {
        ParseErrors[I].emplace(Parsed.error().withContext(
            "package " + std::to_string(Flat[I].PackageId) + "/obj" +
            std::to_string(Flat[I].ObjectIndex)));
        continue;
      }
      Mods[I].emplace(Parsed.take());
      if (Options.Deduplicate) {
        ExactHashes[I] = hashVector(Flat[I].Object->Bytes);
        // Keep the full abstraction string alongside its hash: a 64-bit
        // signature match alone is not proof of a near-duplicate, so the
        // sequential replay below confirms byte-wise before dropping.
        Abstractions[I] = wasm::moduleAbstraction(*Mods[I]);
        ApproxSignatures[I] = hashString(Abstractions[I]);
      }
    }
  });

  SignatureSet SeenExact;
  SignatureSet SeenApprox;
  std::vector<size_t> KeptFlat; ///< Indices into Flat/Mods surviving dedup.
  for (size_t I = 0; I < Flat.size(); ++I) {
    const CompiledObject &Object = *Flat[I].Object;
    ++Out.Dedup.ObjectsBefore;
    Out.Dedup.FunctionsBefore += Object.Mod.Functions.size();
    Out.Dedup.InstructionsBefore += Object.Mod.countInstructions();
    Out.Dedup.BytesBefore += Object.Bytes.size();
    if (!Mods[I]) {
      ++Out.Quarantine.ParseFailures;
      Out.Quarantine.Entries.push_back(
          {Flat[I].PackageId, Flat[I].ObjectIndex, "parse",
           ParseErrors[I]->code(), ParseErrors[I]->message()});
      continue;
    }
    if (Options.Deduplicate) {
      // Hash match alone never drops a module: both sets fall back to a
      // byte-wise key comparison, so a 64-bit collision is kept (and
      // counted) instead of being silently merged with a distinct module.
      std::string ExactKey(Object.Bytes.begin(), Object.Bytes.end());
      if (SeenExact.insert(ExactHashes[I], std::move(ExactKey)) ==
          SignatureSet::Insert::Duplicate) {
        ++Out.Dedup.ExactDuplicates;
        continue;
      }
      if (SeenApprox.insert(ApproxSignatures[I],
                            std::move(Abstractions[I])) ==
          SignatureSet::Insert::Duplicate) {
        ++Out.Dedup.NearDuplicates;
        continue;
      }
    }
    KeptFlat.push_back(I);
  }
  Out.Dedup.SignatureCollisions =
      SeenExact.collisions() + SeenApprox.collisions();
  if (Out.Dedup.SignatureCollisions)
    telemetry::counter("ingest.signature_collisions")
        .add(Out.Dedup.SignatureCollisions);

  BeginStage("ingest.debug_extract");
  std::vector<std::optional<dwarf::DebugInfo>> Debugs(KeptFlat.size());
  std::vector<std::optional<Error>> DebugErrors(KeptFlat.size());
  Pool.parallelFor(0, KeptFlat.size(), 1, [&](size_t Begin, size_t End) {
    for (size_t K = Begin; K < End; ++K) {
      size_t I = KeptFlat[K];
      Result<dwarf::DebugInfo> Debug = dwarf::extractDebugInfo(*Mods[I]);
      if (Debug.isErr()) {
        DebugErrors[K].emplace(Debug.error().withContext(
            "package " + std::to_string(Flat[I].PackageId) + "/obj" +
            std::to_string(Flat[I].ObjectIndex)));
        continue;
      }
      Debugs[K].emplace(Debug.take());
    }
  });

  std::vector<KeptBinary> Kept;
  for (size_t K = 0; K < KeptFlat.size(); ++K) {
    size_t I = KeptFlat[K];
    if (!Debugs[K]) {
      ++Out.Quarantine.DebugFailures;
      Out.Quarantine.Entries.push_back(
          {Flat[I].PackageId, Flat[I].ObjectIndex, "debug-info",
           DebugErrors[K]->code(), DebugErrors[K]->message()});
      continue;
    }
    ++Out.Dedup.ObjectsAfter;
    Out.Dedup.FunctionsAfter += Mods[I]->Functions.size();
    Out.Dedup.InstructionsAfter += Mods[I]->countInstructions();
    Out.Dedup.BytesAfter += Flat[I].Object->Bytes.size();
    Kept.push_back(KeptBinary{std::move(*Mods[I]), std::move(*Debugs[K]),
                              Flat[I].PackageId});
  }

  // --- Stage 1b: dataflow analysis over kept binaries ---------------------
  // Summaries are a pure function of the module bytes, so per-binary slots
  // keep the results thread-count invariant. Analysis failure on a binary
  // that already passed validation is unexpected but non-fatal: the binary
  // simply contributes samples without evidence.
  BeginStage("ingest.analysis");
  bool WantEvidence = Options.ComputeEvidence || Options.Extract.EvidenceTokens;
  std::vector<std::optional<analysis::ModuleSummary>> Summaries(
      WantEvidence ? Kept.size() : 0);
  if (WantEvidence)
    Pool.parallelTasks(Kept.size(), [&](size_t BinaryIndex) {
      Result<analysis::ModuleSummary> Summary =
          analysis::analyzeModule(Kept[BinaryIndex].Mod);
      if (Summary.isOk())
        Summaries[BinaryIndex].emplace(Summary.take());
    });

  // --- Stage 2+3: match functions to subprograms and collect raw samples -
  BeginStage("ingest.match");
  struct RawRef {
    size_t BinaryIndex;
    dwarf::DieRef TypeDie;
    uint32_t FuncIndex;
    int32_t ParamIndex; ///< -1 = return sample.
  };
  // Each binary's matches are independent; per-binary results concatenate
  // in binary order, so Raw is identical to the sequential pipeline's.
  std::vector<std::vector<RawRef>> RawPerBinary(Kept.size());
  std::vector<uint64_t> MismatchPerBinary(Kept.size(), 0);
  Pool.parallelTasks(Kept.size(), [&](size_t BinaryIndex) {
    const KeptBinary &Binary = Kept[BinaryIndex];
    for (uint32_t FuncIndex = 0; FuncIndex < Binary.Mod.Functions.size();
         ++FuncIndex) {
      const wasm::Function &Func = Binary.Mod.Functions[FuncIndex];
      dwarf::DieRef Subprogram =
          Binary.Debug.findSubprogramByLowPc(Func.CodeOffset);
      if (Subprogram == dwarf::InvalidDieRef) {
        ++MismatchPerBinary[BinaryIndex];
        continue;
      }
      const wasm::FuncType &Type = Binary.Mod.functionType(FuncIndex);
      std::vector<dwarf::DieRef> Params =
          Binary.Debug.formalParameters(Subprogram);
      if (Params.size() != Type.Params.size()) {
        // Parameter counts differ between source and binary (e.g. due to
        // optimizations): skip the whole function (§5).
        ++MismatchPerBinary[BinaryIndex];
        continue;
      }
      for (uint32_t ParamIndex = 0; ParamIndex < Params.size(); ++ParamIndex)
        RawPerBinary[BinaryIndex].push_back(
            {BinaryIndex, Binary.Debug.typeOf(Params[ParamIndex]), FuncIndex,
             static_cast<int32_t>(ParamIndex)});
      bool DwarfReturns =
          Binary.Debug.typeOf(Subprogram) != dwarf::InvalidDieRef;
      bool WasmReturns = !Type.Results.empty();
      if (DwarfReturns && WasmReturns)
        RawPerBinary[BinaryIndex].push_back(
            {BinaryIndex, Binary.Debug.typeOf(Subprogram), FuncIndex, -1});
    }
  });
  std::vector<RawRef> Raw;
  for (size_t BinaryIndex = 0; BinaryIndex < Kept.size(); ++BinaryIndex) {
    Out.FunctionsSkippedMismatch += MismatchPerBinary[BinaryIndex];
    Raw.insert(Raw.end(), RawPerBinary[BinaryIndex].begin(),
               RawPerBinary[BinaryIndex].end());
  }

  // --- Stage 4: common-name vocabulary ------------------------------------
  // Fixed-size shards collect into private vocabularies, merged in shard
  // order. NameVocabulary::merge is exactly associative (set unions and
  // integer adds), so the vocabulary matches the sequential build.
  BeginStage("ingest.names");
  constexpr size_t NameShardSize = 1024;
  size_t NameShards = (Raw.size() + NameShardSize - 1) / NameShardSize;
  std::vector<typelang::NameVocabulary> ShardNames(NameShards);
  Pool.mapReduceOrdered(
      NameShards,
      [&](size_t Shard) {
        size_t Begin = Shard * NameShardSize;
        size_t End = std::min(Begin + NameShardSize, Raw.size());
        for (size_t I = Begin; I < End; ++I)
          typelang::collectTypeNames(Kept[Raw[I].BinaryIndex].Debug,
                                     Raw[I].TypeDie,
                                     Kept[Raw[I].BinaryIndex].PackageId,
                                     ShardNames[Shard]);
      },
      [&](size_t Shard) { Out.Names.merge(ShardNames[Shard]); });
  Out.Names.finalize(Out.NumPackages, Options.NameVocabThreshold);

  // --- Materialize samples -------------------------------------------------
  // Every sample has a preallocated disjoint slot, so this is purely
  // data-parallel and order-independent.
  BeginStage("ingest.materialize");
  typelang::ConvertOptions Convert;
  Convert.KeepNestedNames = true;
  Out.Samples.resize(Raw.size());
  Pool.parallelFor(0, Raw.size(), 16, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      const RawRef &Ref = Raw[I];
      const KeptBinary &Binary = Kept[Ref.BinaryIndex];
      TypeSample &Sample = Out.Samples[I];
      Sample.PackageId = Binary.PackageId;
      Sample.RichType =
          typelang::typeFromDwarf(Binary.Debug, Ref.TypeDie, Convert);
      Sample.FieldTokens =
          typelang::fieldShapeTokens(Binary.Debug, Ref.TypeDie);
      const wasm::FuncType &Type = Binary.Mod.functionType(Ref.FuncIndex);
      if (WantEvidence && Summaries[Ref.BinaryIndex])
        Sample.Evidence = analysis::queryEvidence(
            *Summaries[Ref.BinaryIndex], Ref.FuncIndex, Ref.ParamIndex);
      if (Ref.ParamIndex < 0) {
        Sample.IsReturn = true;
        Sample.LowLevel = Type.Results[0];
        Sample.Input = extractReturnInput(
            Binary.Mod, Ref.FuncIndex, Options.Extract,
            Sample.Evidence.Ret ? &*Sample.Evidence.Ret : nullptr);
      } else {
        Sample.IsReturn = false;
        Sample.LowLevel = Type.Params[static_cast<size_t>(Ref.ParamIndex)];
        Sample.Input = extractParamInput(
            Binary.Mod, Ref.FuncIndex, static_cast<uint32_t>(Ref.ParamIndex),
            Options.Extract,
            Sample.Evidence.Param ? &*Sample.Evidence.Param : nullptr);
      }
    }
  });

  // --- Stage 5: per-package sample cap ------------------------------------
  BeginStage("ingest.cap_and_split");
  if (Options.CapPerPackage) {
    std::map<uint32_t, uint64_t> PerPackage;
    for (const TypeSample &Sample : Out.Samples)
      ++PerPackage[Sample.PackageId];
    if (PerPackage.size() >= 2) {
      std::vector<uint64_t> Counts;
      for (const auto &[PackageId, Count] : PerPackage)
        Counts.push_back(Count);
      std::sort(Counts.rbegin(), Counts.rend());
      uint64_t Cap = Counts[1]; // Second most frequent package's count.
      std::map<uint32_t, uint64_t> Taken;
      std::vector<TypeSample> Capped;
      Capped.reserve(Out.Samples.size());
      for (TypeSample &Sample : Out.Samples) {
        if (Taken[Sample.PackageId] >= Cap) {
          ++Out.SamplesDroppedByCap;
          continue;
        }
        ++Taken[Sample.PackageId];
        Capped.push_back(std::move(Sample));
      }
      Out.Samples = std::move(Capped);
    }
  }

  // --- Stage 6: split by package -------------------------------------------
  // Only packages that actually contributed samples matter for the split;
  // fully-deduplicated packages would otherwise eat a validation/test slot.
  std::set<uint32_t> Contributing;
  for (const TypeSample &Sample : Out.Samples)
    Contributing.insert(Sample.PackageId);
  std::vector<uint32_t> PackageIds(Contributing.begin(), Contributing.end());
  Rng SplitRng(Options.SplitSeed);
  SplitRng.shuffle(PackageIds);
  size_t NumTrain = static_cast<size_t>(Options.TrainFraction *
                                        static_cast<double>(PackageIds.size()));
  size_t NumValid = static_cast<size_t>(Options.ValidFraction *
                                        static_cast<double>(PackageIds.size()));
  if (PackageIds.size() >= 3) {
    // Guarantee non-empty validation and test portions.
    NumValid = std::max<size_t>(NumValid, 1);
    if (NumTrain + NumValid >= PackageIds.size())
      NumTrain = PackageIds.size() - NumValid - 1;
  }
  enum class SplitKind : uint8_t { Train, Valid, Test };
  std::map<uint32_t, SplitKind> SplitOf;
  for (size_t I = 0; I < PackageIds.size(); ++I) {
    SplitKind Kind = I < NumTrain ? SplitKind::Train
                     : I < NumTrain + NumValid ? SplitKind::Valid
                                               : SplitKind::Test;
    SplitOf[PackageIds[I]] = Kind;
  }
  for (uint32_t Index = 0; Index < Out.Samples.size(); ++Index) {
    switch (SplitOf[Out.Samples[Index].PackageId]) {
    case SplitKind::Train:
      Out.Train.push_back(Index);
      break;
    case SplitKind::Valid:
      Out.Valid.push_back(Index);
      break;
    case SplitKind::Test:
      Out.Test.push_back(Index);
      break;
    }
  }
  Stage.reset();

  telemetry::counter("ingest.quarantine.parse_failures")
      .add(Out.Quarantine.ParseFailures);
  telemetry::counter("ingest.quarantine.debug_failures")
      .add(Out.Quarantine.DebugFailures);
  telemetry::counter("ingest.duplicates_dropped")
      .add(Out.Dedup.ExactDuplicates + Out.Dedup.NearDuplicates);
  telemetry::counter("ingest.objects_kept").add(Out.Dedup.ObjectsAfter);
  telemetry::counter("ingest.functions_skipped_mismatch")
      .add(Out.FunctionsSkippedMismatch);
  telemetry::counter("ingest.samples_dropped_by_cap")
      .add(Out.SamplesDroppedByCap);
  telemetry::counter("ingest.samples").add(Out.Samples.size());
  return Out;
}

} // namespace dataset
} // namespace snowwhite
