//===- dataset/extract.h - WebAssembly input token extraction (§4.1) -------===//
//
// Builds the instruction-token input sequence for one type-prediction query:
//
//   ( t_low, '<begin>', tok, tok, ';', tok, ';', ..., '<window>', ... )
//
// For parameters, fixed-size windows are extracted around every instruction
// that uses the parameter (local.get/set/tee), the parameter's local index is
// replaced by '<param>', and windows are joined with a '<window>' delimiter.
// For returns, windows end at each return instruction (and the implicit
// fall-through at the function end). Alignment hints and call indices are
// omitted from the tokens.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DATASET_EXTRACT_H
#define SNOWWHITE_DATASET_EXTRACT_H

#include "analysis/evidence.h"
#include "wasm/module.h"

#include <string>
#include <vector>

namespace snowwhite {
namespace dataset {

/// Special tokens of the input representation.
inline constexpr const char *BeginToken = "<begin>";
inline constexpr const char *ParamToken = "<param>";
inline constexpr const char *WindowToken = "<window>";
inline constexpr const char *InstrSeparator = ";";

/// Extraction tuning (paper defaults: w=21 instructions around parameter
/// uses, 20 before returns).
struct ExtractOptions {
  unsigned ParamWindow = 21;  ///< Total window size around a parameter use.
  unsigned ReturnWindow = 20; ///< Instructions before a return.
  bool UseWindows = true;     ///< false = whole body (ablation; relies on
                              ///< later truncation).
  bool IncludeLowLevelType = true; ///< Prefix t_low before <begin>
                                   ///< (ablation: Table 5 rightmost column).
  bool EvidenceTokens = false; ///< Insert analysis-derived evidence tokens
                               ///< ("<evid:ptr>", ...) between t_low and
                               ///< <begin> (EXPERIMENTS ablation).
  bool PathTokens = false; ///< Insert WasmWalker-style control-flow path
                           ///< tokens ("<path:if-t>", ...) after the
                           ///< evidence tokens (analysis/paths.h; ablated
                           ///< in EXPERIMENTS alongside evidence).
};

/// Input sequence for predicting the type of parameter ParamIndex of defined
/// function DefinedIndex. When Options.EvidenceTokens is set and Evidence is
/// non-null, the parameter's evidence summary is rendered into auxiliary
/// tokens after t_low; when Options.PathTokens is set and Paths is non-null,
/// the function's control-flow path tokens (analysis::extractPathTokens)
/// follow the evidence tokens.
std::vector<std::string>
extractParamInput(const wasm::Module &M, uint32_t DefinedIndex,
                  uint32_t ParamIndex, const ExtractOptions &Options = {},
                  const analysis::ParamEvidence *Evidence = nullptr,
                  const std::vector<std::string> *Paths = nullptr);

/// Input sequence for predicting the return type of DefinedIndex. The
/// function must have a result.
std::vector<std::string>
extractReturnInput(const wasm::Module &M, uint32_t DefinedIndex,
                   const ExtractOptions &Options = {},
                   const analysis::ReturnEvidence *Evidence = nullptr,
                   const std::vector<std::string> *Paths = nullptr);

} // namespace dataset
} // namespace snowwhite

#endif // SNOWWHITE_DATASET_EXTRACT_H
