#include "frontend/typegen.h"

#include <array>
#include <cassert>

namespace snowwhite {
namespace frontend {

namespace {

/// Builds a small aggregate with plausible field types.
SrcTypeRef buildAggregate(Rng &R, SrcTypeKind Kind, const std::string &Name,
                          bool WithMethods) {
  auto Aggregate = makeAggregate(Kind, Name);
  Aggregate->HasMethods = WithMethods;
  static const SrcPrimKind FieldPrims[] = {
      SrcPrimKind::SP_I32, SrcPrimKind::SP_U32, SrcPrimKind::SP_I32,
      SrcPrimKind::SP_F64, SrcPrimKind::SP_F32, SrcPrimKind::SP_I64,
      SrcPrimKind::SP_U8,  SrcPrimKind::SP_I16, SrcPrimKind::SP_Char,
      SrcPrimKind::SP_U16, SrcPrimKind::SP_Bool};
  unsigned NumFields = 2 + static_cast<unsigned>(R.nextBelow(5));
  for (unsigned I = 0; I < NumFields; ++I) {
    SrcTypeRef FieldType;
    uint64_t Roll = R.nextBelow(10);
    if (Roll < 7) {
      FieldType = makePrim(FieldPrims[R.nextBelow(std::size(FieldPrims))]);
    } else if (Roll < 9) {
      // Pointer field; self-reference with some probability produces the
      // cyclic DWARF graphs (linked lists) the converter must break.
      if (R.nextBool(0.4))
        FieldType = makePointer(Aggregate);
      else
        FieldType = makePointer(makePrim(SrcPrimKind::SP_Char));
    } else {
      FieldType = makeArray(makePrim(SrcPrimKind::SP_U8),
                            4 + static_cast<uint32_t>(R.nextBelow(28)));
    }
    addField(Aggregate, "f" + std::to_string(I), std::move(FieldType));
  }
  return Aggregate;
}

std::string capitalize(std::string Text) {
  if (!Text.empty() && Text[0] >= 'a' && Text[0] <= 'z')
    Text[0] = static_cast<char>(Text[0] - 'a' + 'A');
  return Text;
}

const char *const NounPool[] = {
    "node",   "buffer", "ctx",    "layer",  "stream", "record", "table",
    "widget", "handle", "cursor", "packet", "banner", "driver", "parser",
    "filter", "matrix", "option", "symbol", "window", "worker", "cache",
    "field",  "image",  "index",  "route",  "state",  "token",  "value",
};

} // namespace

std::vector<WellKnownType> makeWellKnownPool() {
  using IK = WellKnownType::IdiomKind;
  std::vector<WellKnownType> Pool;

  // size_t: typedef of a 32-bit unsigned integer (wasm32 data model).
  Pool.push_back({makeTypedef("size_t", makePrim(SrcPrimKind::SP_U32)), 0.64,
                  false, IK::IK_SizeT});

  // FILE: an opaque-ish struct, used behind pointers.
  {
    auto File = makeAggregate(SrcTypeKind::ST_Struct, "FILE");
    addField(File, "flags", makePrim(SrcPrimKind::SP_U32));
    addField(File, "fd", makePrim(SrcPrimKind::SP_I32));
    addField(File, "pos", makePrim(SrcPrimKind::SP_I64));
    addField(File, "buf", makePointer(makePrim(SrcPrimKind::SP_U8)));
    Pool.push_back({File, 0.45, false, IK::IK_File});
  }

  // C++ standard library types (Table 3 ranks 3-6).
  {
    auto BasicString =
        makeAggregate(SrcTypeKind::ST_Class, "basic_string<char, ...>");
    BasicString->HasMethods = true;
    addField(BasicString, "data", makePointer(makePrim(SrcPrimKind::SP_Char)));
    addField(BasicString, "size", makePrim(SrcPrimKind::SP_U32));
    addField(BasicString, "cap", makePrim(SrcPrimKind::SP_U32));
    Pool.push_back({BasicString, 0.17, true, IK::IK_String});
    // std::string is a typedef for the basic_string instantiation.
    Pool.push_back({makeTypedef("string", BasicString), 0.155, true,
                    IK::IK_String});
  }
  {
    auto Ostream =
        makeAggregate(SrcTypeKind::ST_Class, "basic_ostream<char, ...>");
    Ostream->HasMethods = true;
    addField(Ostream, "rdbuf", makePointer(makePrim(SrcPrimKind::SP_U8)));
    addField(Ostream, "state", makePrim(SrcPrimKind::SP_U32));
    Pool.push_back({Ostream, 0.163, true, IK::IK_Generic});
  }
  {
    auto IosBase = makeAggregate(SrcTypeKind::ST_Class, "ios_base");
    IosBase->HasMethods = true;
    addField(IosBase, "flags", makePrim(SrcPrimKind::SP_U32));
    addField(IosBase, "prec", makePrim(SrcPrimKind::SP_I32));
    Pool.push_back({IosBase, 0.161, true, IK::IK_Generic});
  }
  {
    auto Iterator = makeAggregate(SrcTypeKind::ST_Class,
                                  "ostreambuf_iterator<char, ...>");
    addField(Iterator, "sbuf", makePointer(makePrim(SrcPrimKind::SP_U8)));
    addField(Iterator, "failed", makePrim(SrcPrimKind::SP_Bool));
    Pool.push_back({Iterator, 0.158, true, IK::IK_Generic});
  }

  // va_list: typedef of a pointer to an internal tag struct.
  {
    auto Tag = makeAggregate(SrcTypeKind::ST_Struct, "__va_list_tag");
    addField(Tag, "ptr", makePointer(makePrim(SrcPrimKind::SP_U8)));
    Pool.push_back({makeTypedef("va_list", makePointer(Tag)), 0.158, false,
                    IK::IK_VaList});
  }

  // POSIX-ish scalar typedefs.
  Pool.push_back({makeTypedef("time_t", makePrim(SrcPrimKind::SP_I64)), 0.12,
                  false, IK::IK_TimeT});
  Pool.push_back({makeTypedef("off_t", makePrim(SrcPrimKind::SP_I64)), 0.08,
                  false, IK::IK_Generic});
  Pool.push_back({makeTypedef("ssize_t", makePrim(SrcPrimKind::SP_I32)), 0.09,
                  false, IK::IK_SizeT});
  Pool.push_back({makeTypedef("pid_t", makePrim(SrcPrimKind::SP_I32)), 0.05,
                  false, IK::IK_Generic});
  Pool.push_back({makeTypedef("uid_t", makePrim(SrcPrimKind::SP_U32)), 0.04,
                  false, IK::IK_Generic});
  Pool.push_back({makeTypedef("mode_t", makePrim(SrcPrimKind::SP_U32)), 0.04,
                  false, IK::IK_Generic});
  Pool.push_back({makeTypedef("ptrdiff_t", makePrim(SrcPrimKind::SP_I32)),
                  0.06, false, IK::IK_Generic});
  Pool.push_back({makeTypedef("intptr_t", makePrim(SrcPrimKind::SP_I32)), 0.03,
                  false, IK::IK_Generic});
  Pool.push_back({makeTypedef("clock_t", makePrim(SrcPrimKind::SP_I64)), 0.03,
                  false, IK::IK_TimeT});
  Pool.push_back({makeTypedef("socklen_t", makePrim(SrcPrimKind::SP_U32)),
                  0.025, false, IK::IK_Generic});

  // Other common opaque library structs.
  {
    auto Dir = makeAggregate(SrcTypeKind::ST_Struct, "DIR");
    addField(Dir, "fd", makePrim(SrcPrimKind::SP_I32));
    addField(Dir, "buf", makePointer(makePrim(SrcPrimKind::SP_U8)));
    Pool.push_back({Dir, 0.03, false, IK::IK_Generic});
  }
  {
    auto Regex = makeAggregate(SrcTypeKind::ST_Struct, "regex_t");
    addField(Regex, "buffer", makePointer(makePrim(SrcPrimKind::SP_U8)));
    addField(Regex, "used", makePrim(SrcPrimKind::SP_U32));
    Pool.push_back({Regex, 0.025, false, IK::IK_Generic});
  }
  {
    auto Mutex = makeAggregate(SrcTypeKind::ST_Struct, "pthread_mutex_t");
    addField(Mutex, "lock", makePrim(SrcPrimKind::SP_I32));
    addField(Mutex, "owner", makePrim(SrcPrimKind::SP_I32));
    Pool.push_back({Mutex, 0.04, false, IK::IK_Generic});
  }
  Pool.push_back({makeTypedef("pthread_t", makePrim(SrcPrimKind::SP_U32)),
                  0.045, false, IK::IK_Generic});

  return Pool;
}

TypeEnvironment::TypeEnvironment(Rng &R, bool IsCxxIn,
                                 const std::string &PackagePrefix,
                                 const std::vector<WellKnownType> &Pool)
    : IsCxx(IsCxxIn) {
  // Roll per-package inclusion of each well-known type.
  for (const WellKnownType &Known : Pool) {
    if (Known.CxxOnly && !IsCxx)
      continue;
    if (R.nextBool(Known.InclusionProbability))
      UsedWellKnown.push_back(Known);
  }

  // Project-specific aggregates. C++ packages favor classes.
  unsigned NumAggregates = 2 + static_cast<unsigned>(R.nextBelow(5));
  for (unsigned I = 0; I < NumAggregates; ++I) {
    std::string Noun = NounPool[R.nextBelow(std::size(NounPool))];
    bool AsClass = IsCxx && R.nextBool(0.72);
    if (AsClass) {
      std::string Name = capitalize(PackagePrefix) + capitalize(Noun);
      Classes.push_back(buildAggregate(R, SrcTypeKind::ST_Class, Name, true));
    } else {
      std::string Name = PackagePrefix + "_" + Noun;
      Structs.push_back(
          buildAggregate(R, SrcTypeKind::ST_Struct, Name, false));
    }
  }
  if (Structs.empty())
    Structs.push_back(buildAggregate(R, SrcTypeKind::ST_Struct,
                                     PackagePrefix + "_impl", false));
  // Unions are rarer but do appear (variant payloads, tagged values).
  if (R.nextBool(0.4))
    Unions.push_back(buildAggregate(R, SrcTypeKind::ST_Union,
                                    PackagePrefix + "_u", false));

  // Enums, typedefs, forward declarations.
  unsigned NumEnums = 1 + static_cast<unsigned>(R.nextBelow(2));
  for (unsigned I = 0; I < NumEnums; ++I)
    Enums.push_back(makeEnum(PackagePrefix + "_" +
                             NounPool[R.nextBelow(std::size(NounPool))] +
                             "_kind"));
  unsigned NumTypedefs = 1 + static_cast<unsigned>(R.nextBelow(2));
  static const SrcPrimKind TypedefPrims[] = {
      SrcPrimKind::SP_U32, SrcPrimKind::SP_I32, SrcPrimKind::SP_U64,
      SrcPrimKind::SP_U16};
  for (unsigned I = 0; I < NumTypedefs; ++I)
    Typedefs.push_back(
        makeTypedef(PackagePrefix + "_" +
                        NounPool[R.nextBelow(std::size(NounPool))] + "_t",
                    makePrim(TypedefPrims[R.nextBelow(4)])));
  Forwards.push_back(makeForward(
      PackagePrefix + "_" + NounPool[R.nextBelow(std::size(NounPool))] +
          "_priv",
      /*IsClass=*/false));
}

SrcTypeRef TypeEnvironment::sampleLocalAggregate(Rng &R) const {
  if (!Unions.empty() && R.nextBool(0.05))
    return R.pick(Unions);
  // C++ packages are class-heavy.
  if (!Classes.empty() && R.nextBool(0.72))
    return R.pick(Classes);
  return R.pick(Structs);
}

SrcTypeRef TypeEnvironment::sampleAggregatePointer(Rng &R,
                                                   bool AllowConst) const {
  SrcTypeRef Pointee = sampleLocalAggregate(R);
  if (AllowConst && R.nextBool(0.27))
    Pointee = makeConst(Pointee);
  if (IsCxx && R.nextBool(0.18))
    return makeReference(Pointee);
  return makePointer(Pointee);
}

SrcTypeRef TypeEnvironment::samplePrimitive(Rng &R) const {
  // Weighted toward i32 (Table 2 rank 3).
  static const std::pair<SrcPrimKind, double> Prims[] = {
      {SrcPrimKind::SP_I32, 0.40},  {SrcPrimKind::SP_U32, 0.13},
      {SrcPrimKind::SP_F64, 0.10},  {SrcPrimKind::SP_Bool, 0.07},
      {SrcPrimKind::SP_I64, 0.06},  {SrcPrimKind::SP_U64, 0.04},
      {SrcPrimKind::SP_F32, 0.06},  {SrcPrimKind::SP_Char, 0.04},
      {SrcPrimKind::SP_I16, 0.025}, {SrcPrimKind::SP_U16, 0.025},
      {SrcPrimKind::SP_I8, 0.02},   {SrcPrimKind::SP_U8, 0.03},
      {SrcPrimKind::SP_F128, 0.005},{SrcPrimKind::SP_Complex, 0.005},
      {SrcPrimKind::SP_WChar32, 0.01},
  };
  std::vector<double> Weights;
  for (const auto &[Kind, Weight] : Prims)
    Weights.push_back(Weight);
  return makePrim(Prims[R.nextWeighted(Weights)].first);
}

SrcTypeRef TypeEnvironment::sampleParamType(Rng &R) const {
  // Category weights shaped after Table 2 of the paper.
  enum Category {
    CatAggregatePtr,
    CatPrim,
    CatCharPtr,
    CatWellKnown,
    CatVoidOrFwdPtr,
    CatPrimPtr,
    CatLocalTypedef,
    CatEnum,
    CatPtrPtr,
    CatArray,
    CatFuncPtr,
    CatWCharPtr,
    CatAggregateByValue,
  };
  static const double Weights[] = {
      /*CatAggregatePtr=*/0.40, /*CatPrim=*/0.24,
      /*CatCharPtr=*/0.055,     /*CatWellKnown=*/0.08,
      /*CatVoidOrFwdPtr=*/0.035,/*CatPrimPtr=*/0.07,
      /*CatLocalTypedef=*/0.025,/*CatEnum=*/0.025,
      /*CatPtrPtr=*/0.02,       /*CatArray=*/0.015,
      /*CatFuncPtr=*/0.01,      /*CatWCharPtr=*/0.005,
      /*CatAggregateByValue=*/0.02,
  };
  std::vector<double> WeightVector(std::begin(Weights), std::end(Weights));

  switch (static_cast<Category>(R.nextWeighted(WeightVector))) {
  case CatAggregatePtr:
    return sampleAggregatePointer(R, /*AllowConst=*/true);
  case CatPrim:
    return samplePrimitive(R);
  case CatCharPtr: {
    SrcTypeRef Char = makePrim(SrcPrimKind::SP_Char);
    if (R.nextBool(0.55))
      Char = makeConst(Char);
    return makePointer(Char);
  }
  case CatWellKnown: {
    if (UsedWellKnown.empty())
      return samplePrimitive(R);
    const WellKnownType &Known = R.pick(UsedWellKnown);
    const SrcType &Layout = Known.Type->strippedForLayout();
    // Aggregate-valued well-known types are used behind pointers.
    if (Layout.Kind == SrcTypeKind::ST_Struct ||
        Layout.Kind == SrcTypeKind::ST_Class) {
      SrcTypeRef Pointee = Known.Type;
      if (R.nextBool(0.2))
        Pointee = makeConst(Pointee);
      if (IsCxx && R.nextBool(0.25))
        return makeReference(Pointee);
      return makePointer(Pointee);
    }
    return Known.Type;
  }
  case CatVoidOrFwdPtr:
    if (R.nextBool(0.5))
      return makePointer(makeVoid());
    return makePointer(R.pick(Forwards));
  case CatPrimPtr: {
    SrcTypeRef Pointee = samplePrimitive(R);
    if (R.nextBool(0.2))
      Pointee = makeConst(Pointee);
    return makePointer(Pointee);
  }
  case CatLocalTypedef:
    return R.pick(Typedefs);
  case CatEnum:
    return R.pick(Enums);
  case CatPtrPtr: {
    SrcTypeRef Inner = R.nextBool(0.5)
                           ? makePointer(sampleLocalAggregate(R))
                           : makePointer(makePrim(SrcPrimKind::SP_Char));
    return makePointer(Inner);
  }
  case CatArray: {
    SrcTypeRef Element =
        R.nextBool(0.5) ? makePrim(SrcPrimKind::SP_F64) : samplePrimitive(R);
    SrcTypeRef Array =
        makeArray(Element, 4 + static_cast<uint32_t>(R.nextBelow(60)));
    // Plain array parameters decay to pointers in DWARF; an explicit
    // pointer-to-array (e.g. `double (*)[16]`) keeps the 'array'
    // constructor visible in the type language.
    if (R.nextBool(0.35))
      return makePointer(Array);
    return Array;
  }
  case CatFuncPtr: {
    std::vector<SrcTypeRef> ProtoParams = {makePrim(SrcPrimKind::SP_I32)};
    if (R.nextBool(0.5))
      ProtoParams.push_back(makePointer(makeVoid()));
    return makePointer(
        makeFuncProto(std::move(ProtoParams), makePrim(SrcPrimKind::SP_I32)));
  }
  case CatWCharPtr:
    return makePointer(makePrim(SrcPrimKind::SP_WChar32));
  case CatAggregateByValue:
    // Small structs/unions passed by value: the source (and DWARF) type is
    // the aggregate itself, while the wasm ABI passes a pointer (byval).
    return sampleLocalAggregate(R);
  }
  return samplePrimitive(R);
}

SrcTypeRef TypeEnvironment::sampleReturnType(Rng &R) const {
  if (R.nextBool(0.48))
    return makeVoid();
  enum Category {
    CatPrim,
    CatAggregatePtr,
    CatCharPtr,
    CatVoidPtr,
    CatWellKnown,
    CatEnum,
    CatBool,
  };
  static const double Weights[] = {
      /*CatPrim=*/0.46,   /*CatAggregatePtr=*/0.17, /*CatCharPtr=*/0.06,
      /*CatVoidPtr=*/0.05,/*CatWellKnown=*/0.12,    /*CatEnum=*/0.05,
      /*CatBool=*/0.09,
  };
  std::vector<double> WeightVector(std::begin(Weights), std::end(Weights));
  switch (static_cast<Category>(R.nextWeighted(WeightVector))) {
  case CatPrim:
    return samplePrimitive(R);
  case CatAggregatePtr:
    return sampleAggregatePointer(R, /*AllowConst=*/false);
  case CatCharPtr: {
    SrcTypeRef Char = makePrim(SrcPrimKind::SP_Char);
    if (R.nextBool(0.4))
      Char = makeConst(Char);
    return makePointer(Char);
  }
  case CatVoidPtr:
    return makePointer(makeVoid());
  case CatWellKnown: {
    if (UsedWellKnown.empty())
      return samplePrimitive(R);
    const WellKnownType &Known = R.pick(UsedWellKnown);
    const SrcType &Layout = Known.Type->strippedForLayout();
    if (Layout.Kind == SrcTypeKind::ST_Struct ||
        Layout.Kind == SrcTypeKind::ST_Class)
      return makePointer(Known.Type);
    return Known.Type;
  }
  case CatEnum:
    return R.pick(Enums);
  case CatBool:
    return makePrim(SrcPrimKind::SP_Bool);
  }
  return samplePrimitive(R);
}

SrcFunction generateSignature(Rng &R, const TypeEnvironment &Env,
                              const std::string &PackagePrefix,
                              uint32_t FunctionIndex) {
  SrcFunction Func;
  Func.IsExternCpp = Env.isCxx();
  static const char *const Verbs[] = {
      "init", "get",   "set",    "update", "parse",  "read",  "write",
      "free", "alloc", "handle", "apply",  "compute", "reset", "find",
  };
  std::string Verb = Verbs[R.nextBelow(std::size(Verbs))];
  std::string Noun = NounPool[R.nextBelow(std::size(NounPool))];
  Func.Name = PackagePrefix + "_" + Verb + "_" + Noun + "_" +
              std::to_string(FunctionIndex);
  unsigned NumParams = static_cast<unsigned>(R.nextWeighted(
      {0.08, 0.27, 0.28, 0.20, 0.10, 0.05, 0.02})); // 0..6 params.
  for (unsigned I = 0; I < NumParams; ++I)
    Func.Params.emplace_back("a" + std::to_string(I), Env.sampleParamType(R));
  Func.ReturnType = Env.sampleReturnType(R);
  return Func;
}

} // namespace frontend
} // namespace snowwhite
