//===- frontend/codegen.h - Lower synthetic functions to WebAssembly -------===//
//
// Compiles SrcFunctions to WebAssembly function bodies whose instruction
// patterns correlate with the source types — the statistical signal the
// paper's model learns from. A parameter declared `double *` produces
// f64.load/f64.store idioms, `const char *` produces a load8_u string-scan
// loop, a class pointer produces vtable-dispatch patterns, a `size_t`
// produces allocation/pointer-arithmetic patterns, and so on. Bodies also
// contain unrelated "noise" code and control flow, so predicting a type
// requires focusing on the windows around parameter uses (paper §4.1).
//
// All generated code validates under wasm/validate.h.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_FRONTEND_CODEGEN_H
#define SNOWWHITE_FRONTEND_CODEGEN_H

#include "frontend/ast.h"
#include "support/rng.h"
#include "wasm/module.h"

namespace snowwhite {
namespace frontend {

/// Codegen tuning.
struct CodegenOptions {
  /// Scales the amount of unrelated code between parameter usages.
  double NoiseLevel = 1.0;
  /// Fraction of functions that are very long (heavy-tailed length
  /// distribution, like the paper's dataset where 10% of functions exceed
  /// 1,000 tokens).
  double LongFunctionRate = 0.06;
};

/// The shared "libc-ish" import table each synthetic module starts with.
/// Call sites reference these by index (the token representation later drops
/// the index, so recognizability comes from argument patterns).
enum StandardImport : uint32_t {
  ImportAlloc = 0,   ///< (i32) -> i32, malloc-like.
  ImportRelease = 1, ///< (i32) -> (), free-like.
  ImportLog = 2,     ///< (i32, i32) -> i32, printf-like.
  ImportCopy = 3,    ///< (i32, i32, i32) -> i32, memcpy-like.
  ImportScan = 4,    ///< (i32) -> i32, strlen-like.
  ImportIo = 5,      ///< (i32, i32, i32, i32) -> i32, fread-like.
  ImportMath = 6,    ///< (f64, f64) -> f64.
  ImportMathF = 7,   ///< (f32, f32) -> f32.
  ImportWide = 8,    ///< (i64, i64) -> i64.
  ImportNotify = 9,  ///< () -> ().
  NumStandardImports = 10,
};

/// Installs the standard imports, one memory, and a couple of globals into
/// an empty module. Must be called before compileFunction.
void initStandardModule(wasm::Module &M);

/// Compiles Func into M: interns its wasm type, appends the Function with a
/// generated body, and exports it under its source name. Returns the defined
/// function index.
uint32_t compileFunction(wasm::Module &M, const SrcFunction &Func, Rng &R,
                         const CodegenOptions &Options = {});

} // namespace frontend
} // namespace snowwhite

#endif // SNOWWHITE_FRONTEND_CODEGEN_H
