#include "frontend/dwarf_emit.h"

namespace snowwhite {
namespace frontend {

using dwarf::Attr;
using dwarf::DieRef;
using dwarf::Encoding;
using dwarf::InvalidDieRef;
using dwarf::Tag;

namespace {

struct BaseTypeSpec {
  const char *Name;
  Encoding Enc;
  uint32_t ByteSize;
};

BaseTypeSpec baseTypeSpec(SrcPrimKind Kind) {
  switch (Kind) {
  case SrcPrimKind::SP_Bool:
    return {"bool", Encoding::Boolean, 1};
  case SrcPrimKind::SP_I8:
    return {"signed char", Encoding::SignedChar, 1};
  case SrcPrimKind::SP_U8:
    return {"unsigned char", Encoding::UnsignedChar, 1};
  case SrcPrimKind::SP_I16:
    return {"short", Encoding::Signed, 2};
  case SrcPrimKind::SP_U16:
    return {"unsigned short", Encoding::Unsigned, 2};
  case SrcPrimKind::SP_I32:
    return {"int", Encoding::Signed, 4};
  case SrcPrimKind::SP_U32:
    return {"unsigned int", Encoding::Unsigned, 4};
  case SrcPrimKind::SP_I64:
    return {"long long", Encoding::Signed, 8};
  case SrcPrimKind::SP_U64:
    return {"unsigned long long", Encoding::Unsigned, 8};
  case SrcPrimKind::SP_F32:
    return {"float", Encoding::Float, 4};
  case SrcPrimKind::SP_F64:
    return {"double", Encoding::Float, 8};
  case SrcPrimKind::SP_F128:
    return {"long double", Encoding::Float, 16};
  case SrcPrimKind::SP_Complex:
    return {"complex double", Encoding::ComplexFloat, 16};
  case SrcPrimKind::SP_Char:
    return {"char", Encoding::SignedChar, 1};
  case SrcPrimKind::SP_WChar16:
    return {"char16_t", Encoding::Utf, 2};
  case SrcPrimKind::SP_WChar32:
    return {"char32_t", Encoding::Utf, 4};
  }
  assert(false && "unknown primitive");
  return {"int", Encoding::Signed, 4};
}

} // namespace

DieRef DwarfEmitter::emitType(const SrcTypeRef &T) {
  if (!T || T->Kind == SrcTypeKind::ST_Void)
    return InvalidDieRef;
  auto Found = Cache.find(T);
  if (Found != Cache.end())
    return Found->second;

  // Create the DIE first and cache it before recursing, so cyclic types
  // (struct node { node *next; }) terminate.
  auto CreateCached = [&](Tag DieTag) {
    DieRef D = Info.createDie(DieTag);
    Cache.emplace(T, D);
    return D;
  };

  switch (T->Kind) {
  case SrcTypeKind::ST_Prim: {
    BaseTypeSpec Spec = baseTypeSpec(T->Prim);
    DieRef D = CreateCached(Tag::BaseType);
    Info.setString(D, Attr::Name, Spec.Name);
    Info.setUint(D, Attr::Encoding, static_cast<uint64_t>(Spec.Enc));
    Info.setUint(D, Attr::ByteSize, Spec.ByteSize);
    return D;
  }
  case SrcTypeKind::ST_Pointer: {
    DieRef D = CreateCached(Tag::PointerType);
    DieRef Pointee = emitType(T->Inner);
    if (Pointee != InvalidDieRef)
      Info.setRef(D, Attr::Type, Pointee);
    return D;
  }
  case SrcTypeKind::ST_Reference: {
    DieRef D = CreateCached(Tag::ReferenceType);
    DieRef Referent = emitType(T->Inner);
    if (Referent != InvalidDieRef)
      Info.setRef(D, Attr::Type, Referent);
    return D;
  }
  case SrcTypeKind::ST_Array: {
    DieRef D = CreateCached(Tag::ArrayType);
    DieRef Element = emitType(T->Inner);
    if (Element != InvalidDieRef)
      Info.setRef(D, Attr::Type, Element);
    DieRef Subrange = Info.createDie(Tag::SubrangeType);
    Info.setUint(Subrange, Attr::Count, T->ArrayCount);
    Info.addChild(D, Subrange);
    return D;
  }
  case SrcTypeKind::ST_Const: {
    DieRef D = CreateCached(Tag::ConstType);
    DieRef Under = emitType(T->Inner);
    if (Under != InvalidDieRef)
      Info.setRef(D, Attr::Type, Under);
    return D;
  }
  case SrcTypeKind::ST_Volatile: {
    DieRef D = CreateCached(Tag::VolatileType);
    DieRef Under = emitType(T->Inner);
    if (Under != InvalidDieRef)
      Info.setRef(D, Attr::Type, Under);
    return D;
  }
  case SrcTypeKind::ST_Typedef: {
    DieRef D = CreateCached(Tag::Typedef);
    Info.setString(D, Attr::Name, T->Name);
    DieRef Under = emitType(T->Inner);
    if (Under != InvalidDieRef)
      Info.setRef(D, Attr::Type, Under);
    return D;
  }
  case SrcTypeKind::ST_Struct:
  case SrcTypeKind::ST_Class:
  case SrcTypeKind::ST_Union: {
    Tag DieTag = T->Kind == SrcTypeKind::ST_Struct  ? Tag::StructureType
                 : T->Kind == SrcTypeKind::ST_Class ? Tag::ClassType
                                                    : Tag::UnionType;
    DieRef D = CreateCached(DieTag);
    if (!T->Name.empty())
      Info.setString(D, Attr::Name, T->Name);
    Info.setUint(D, Attr::ByteSize, T->byteSize());
    for (const SrcField &Field : T->Fields) {
      DieRef Member = Info.createDie(Tag::Member);
      Info.setString(Member, Attr::Name, Field.Name);
      Info.setUint(Member, Attr::DataMemberLocation, Field.ByteOffset);
      DieRef FieldType = emitType(Field.Type);
      if (FieldType != InvalidDieRef)
        Info.setRef(Member, Attr::Type, FieldType);
      Info.addChild(D, Member);
    }
    return D;
  }
  case SrcTypeKind::ST_Enum: {
    DieRef D = CreateCached(Tag::EnumerationType);
    if (!T->Name.empty())
      Info.setString(D, Attr::Name, T->Name);
    Info.setUint(D, Attr::ByteSize, 4);
    // A couple of representative enumerators, as real DWARF would carry.
    for (int I = 0; I < 2; ++I) {
      DieRef Enumerator = Info.createDie(Tag::Enumerator);
      Info.setString(Enumerator, Attr::Name,
                     T->Name + "_E" + std::to_string(I));
      Info.setUint(Enumerator, Attr::ConstValue, static_cast<uint64_t>(I));
      Info.addChild(D, Enumerator);
    }
    return D;
  }
  case SrcTypeKind::ST_FuncProto: {
    DieRef D = CreateCached(Tag::SubroutineType);
    DieRef Return = emitType(T->ProtoReturn);
    if (Return != InvalidDieRef)
      Info.setRef(D, Attr::Type, Return);
    for (const SrcTypeRef &Param : T->ProtoParams) {
      DieRef ParamDie = Info.createDie(Tag::FormalParameter);
      DieRef ParamType = emitType(Param);
      if (ParamType != InvalidDieRef)
        Info.setRef(ParamDie, Attr::Type, ParamType);
      Info.addChild(D, ParamDie);
    }
    return D;
  }
  case SrcTypeKind::ST_Forward: {
    DieRef D =
        CreateCached(T->HasMethods ? Tag::ClassType : Tag::StructureType);
    if (!T->Name.empty())
      Info.setString(D, Attr::Name, T->Name);
    Info.setFlag(D, Attr::Declaration);
    return D;
  }
  case SrcTypeKind::ST_Nullptr: {
    DieRef D = CreateCached(Tag::UnspecifiedType);
    Info.setString(D, Attr::Name, "decltype(nullptr)");
    return D;
  }
  case SrcTypeKind::ST_Void:
    return InvalidDieRef;
  }
  assert(false && "unhandled SrcTypeKind");
  return InvalidDieRef;
}

DieRef DwarfEmitter::emitFunction(const SrcFunction &Func, uint64_t LowPc) {
  DieRef Subprogram = Info.createDie(Tag::Subprogram);
  Info.setString(Subprogram, Attr::Name, Func.Name);
  Info.setUint(Subprogram, Attr::LowPc, LowPc);
  Info.setFlag(Subprogram, Attr::External);
  DieRef Return = emitType(Func.ReturnType);
  if (Return != InvalidDieRef)
    Info.setRef(Subprogram, Attr::Type, Return);
  for (const auto &[ParamName, ParamType] : Func.Params) {
    DieRef ParamDie = Info.createDie(Tag::FormalParameter);
    Info.setString(ParamDie, Attr::Name, ParamName);
    // Array parameters decay to pointers in C/C++, and compilers emit the
    // decayed pointer type in DWARF (paper Fig. 1: `double Control[]` has a
    // DW_TAG_pointer_type).
    SrcTypeRef Emitted = ParamType;
    if (ParamType->strippedForLayout().Kind == SrcTypeKind::ST_Array)
      Emitted = makePointer(ParamType->strippedForLayout().Inner);
    DieRef TypeDie = emitType(Emitted);
    if (TypeDie != InvalidDieRef)
      Info.setRef(ParamDie, Attr::Type, TypeDie);
    Info.addChild(Subprogram, ParamDie);
  }
  Info.addChild(Info.root(), Subprogram);
  return Subprogram;
}

} // namespace frontend
} // namespace snowwhite
