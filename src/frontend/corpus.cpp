#include "frontend/corpus.h"

#include "dwarf/io.h"
#include "frontend/dwarf_emit.h"
#include "frontend/typegen.h"
#include "wasm/names.h"
#include "wasm/writer.h"

#include <cassert>

namespace snowwhite {
namespace frontend {

CompiledObject compileObject(const std::vector<SrcFunction> &Functions,
                             const std::string &FileName, Rng &R,
                             const CodegenOptions &Options) {
  CompiledObject Object;
  Object.FileName = FileName;
  initStandardModule(Object.Mod);
  for (const SrcFunction &Func : Functions)
    compileFunction(Object.Mod, Func, R, Options);

  // First serialization assigns CodeOffsets; DWARF low_pc anchors to them.
  (void)wasm::writeModule(Object.Mod);
  DwarfEmitter Emitter(Object.Debug);
  for (size_t I = 0; I < Functions.size(); ++I) {
    // Occasionally the source-level and binary-level parameter lists
    // disagree (optimizations drop unused parameters); the paper skips such
    // functions during matching (~6% of its dataset). Model this by
    // omitting one formal parameter from the debug info.
    if (!Functions[I].Params.empty() && R.nextBool(0.04)) {
      SrcFunction Mismatched = Functions[I];
      Mismatched.Params.pop_back();
      Emitter.emitFunction(Mismatched, Object.Mod.Functions[I].CodeOffset);
      continue;
    }
    Emitter.emitFunction(Functions[I], Object.Mod.Functions[I].CodeOffset);
  }
  dwarf::attachDebugInfo(Object.Debug, Object.Mod);
  // Name section, as toolchains emit (and often keep after stripping).
  wasm::FunctionNameMap Names;
  for (size_t I = 0; I < Functions.size(); ++I)
    Names[Object.Mod.functionSpaceIndex(static_cast<uint32_t>(I))] =
        Functions[I].Name;
  wasm::attachNameSection(Object.Mod, Names);
  // Custom sections serialize after the code section, so CodeOffsets are
  // unchanged by the second serialization.
  Object.Bytes = wasm::writeModule(Object.Mod);
  return Object;
}

namespace {

/// Produces a near-duplicate: identical abstracted instructions, jittered
/// constant immediates (models embedded build strings/addresses changing
/// between builds of the same library).
CompiledObject makeNearDuplicate(const CompiledObject &Original, Rng &R,
                                 const std::string &FileName) {
  CompiledObject Copy;
  Copy.FileName = FileName;
  Copy.Mod = Original.Mod;
  Copy.Mod.Customs.clear();
  for (wasm::Function &Func : Copy.Mod.Functions)
    for (wasm::Instr &I : Func.Body)
      if (I.Op == wasm::Opcode::I32Const && R.nextBool(0.3)) {
        int64_t Value = static_cast<int64_t>(I.Imm0);
        Value += static_cast<int64_t>(1 + R.nextBelow(7));
        I.Imm0 = static_cast<uint64_t>(Value);
      }

  // Re-anchor DWARF low_pc to the (possibly shifted) code offsets.
  (void)wasm::writeModule(Copy.Mod);
  Copy.Debug = Original.Debug;
  std::vector<dwarf::DieRef> Subprograms = Copy.Debug.subprograms();
  assert(Subprograms.size() == Copy.Mod.Functions.size() &&
         "subprogram/function count mismatch");
  for (size_t I = 0; I < Subprograms.size(); ++I)
    Copy.Debug.setUint(Subprograms[I], dwarf::Attr::LowPc,
                       Copy.Mod.Functions[I].CodeOffset);
  dwarf::attachDebugInfo(Copy.Debug, Copy.Mod);
  // Function names are unchanged by the constant jitter.
  if (const wasm::CustomSection *Names = Original.Mod.findCustom("name"))
    Copy.Mod.Customs.push_back(*Names);
  Copy.Bytes = wasm::writeModule(Copy.Mod);
  return Copy;
}

const char *const PackageStems[] = {
    "glpk",  "tiff", "gdal",  "curl", "zlib",  "pixman", "cairo", "ogg",
    "vorbis", "xml",  "json",  "pcre", "sqlite", "lua",    "fftw",  "gsl",
    "blas",  "yaml", "geos",  "proj", "expat", "jpeg",   "webp",  "flac",
    "physfs", "sdl",  "glew",  "qhull", "eigen", "boostio", "gmp",  "mpfr",
};

} // namespace

Corpus buildCorpus(const CorpusSpec &Spec) {
  Corpus Out;
  Rng Root(Spec.Seed);
  std::vector<WellKnownType> Pool = makeWellKnownPool();

  // Shared "static library" pool for exact and near duplication across
  // packages.
  std::vector<CompiledObject> LibraryPool;

  for (uint32_t PackageIndex = 0; PackageIndex < Spec.NumPackages;
       ++PackageIndex) {
    Rng R = Root.fork();
    Package Pkg;
    Pkg.Id = PackageIndex;
    Pkg.IsCxx = R.nextBool(Spec.CxxFraction);
    std::string Stem = PackageStems[PackageIndex % std::size(PackageStems)];
    Pkg.Name = "lib" + Stem + std::to_string(PackageIndex);

    TypeEnvironment Env(R, Pkg.IsCxx, Stem + std::to_string(PackageIndex),
                        Pool);

    uint32_t NumObjects =
        Spec.MinObjectsPerPackage +
        static_cast<uint32_t>(R.nextBelow(
            Spec.MaxObjectsPerPackage - Spec.MinObjectsPerPackage + 1));
    uint32_t FunctionCounter = 0;
    for (uint32_t ObjectIndex = 0; ObjectIndex < NumObjects; ++ObjectIndex) {
      std::string FileName =
          Pkg.Name + "/obj" + std::to_string(ObjectIndex) + ".o";

      // Duplication from the shared library pool.
      if (!LibraryPool.empty() && R.nextBool(Spec.ExactDupRate)) {
        CompiledObject Dup = LibraryPool[R.nextBelow(LibraryPool.size())];
        Dup.FileName = FileName;
        Pkg.Objects.push_back(std::move(Dup));
        continue;
      }
      if (!LibraryPool.empty() && R.nextBool(Spec.NearDupRate)) {
        const CompiledObject &Original =
            LibraryPool[R.nextBelow(LibraryPool.size())];
        Pkg.Objects.push_back(makeNearDuplicate(Original, R, FileName));
        continue;
      }

      uint32_t NumFunctions =
          Spec.MinFunctionsPerObject +
          static_cast<uint32_t>(R.nextBelow(
              Spec.MaxFunctionsPerObject - Spec.MinFunctionsPerObject + 1));
      std::vector<SrcFunction> Functions;
      for (uint32_t FunctionIndex = 0; FunctionIndex < NumFunctions;
           ++FunctionIndex)
        Functions.push_back(generateSignature(
            R, Env, Stem + std::to_string(PackageIndex), FunctionCounter++));
      CompiledObject Object =
          compileObject(Functions, FileName, R, Spec.Codegen);

      // Some fresh objects enter the shared pool, to be duplicated by later
      // packages (statically linked library effect).
      if (R.nextBool(0.15) && LibraryPool.size() < 64)
        LibraryPool.push_back(Object);
      Pkg.Objects.push_back(std::move(Object));
    }

    for (const CompiledObject &Object : Pkg.Objects) {
      ++Out.TotalObjects;
      Out.TotalFunctions += Object.Mod.Functions.size();
      Out.TotalInstructions += Object.Mod.countInstructions();
      Out.TotalBytes += Object.Bytes.size();
    }
    Out.Packages.push_back(std::move(Pkg));
  }
  return Out;
}

} // namespace frontend
} // namespace snowwhite
