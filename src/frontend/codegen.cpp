#include "frontend/codegen.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace snowwhite {
namespace frontend {

using wasm::FuncType;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

void initStandardModule(Module &M) {
  auto AddImport = [&](const char *Name, std::vector<ValType> Params,
                       std::vector<ValType> Results) {
    FuncType Type;
    Type.Params = std::move(Params);
    Type.Results = std::move(Results);
    uint32_t TypeIndex = M.internType(Type);
    M.Imports.push_back({"env", Name, TypeIndex});
  };
  using VT = ValType;
  AddImport("lib_alloc", {VT::I32}, {VT::I32});
  AddImport("lib_release", {VT::I32}, {});
  AddImport("lib_log", {VT::I32, VT::I32}, {VT::I32});
  AddImport("lib_copy", {VT::I32, VT::I32, VT::I32}, {VT::I32});
  AddImport("lib_scan", {VT::I32}, {VT::I32});
  AddImport("lib_io", {VT::I32, VT::I32, VT::I32, VT::I32}, {VT::I32});
  AddImport("lib_math", {VT::F64, VT::F64}, {VT::F64});
  AddImport("lib_mathf", {VT::F32, VT::F32}, {VT::F32});
  AddImport("lib_wide", {VT::I64, VT::I64}, {VT::I64});
  AddImport("lib_notify", {}, {});
  assert(M.Imports.size() == NumStandardImports &&
         "import table out of sync with StandardImport");

  M.Memories.push_back(wasm::MemoryDecl{16, false, 0});
  // Global 0: an i32 "errno"-like mutable global; global 1: stack pointer.
  M.Globals.push_back({VT::I32, true, Instr::i32Const(0)});
  M.Globals.push_back({VT::I32, true, Instr::i32Const(65536)});
}

namespace {

/// What the usage-idiom selector needs to know about a (parameter or return)
/// source type.
struct TypeTraits {
  enum class ShapeKind : uint8_t {
    SK_Value,   ///< Primitive/enum passed by value.
    SK_Pointer, ///< Pointer or reference.
    SK_Array,   ///< Array parameter (decayed, always indexed).
    SK_FuncPtr, ///< Pointer to function.
  };
  ShapeKind Shape = ShapeKind::SK_Value;
  const SrcType *Layout = nullptr;  ///< Stripped self type.
  const SrcType *Pointee = nullptr; ///< Stripped pointee/element (if any).
  bool PointeeConst = false;
  bool PointeeIncomplete = false; ///< void / forward-declared pointee.
  /// Recognized well-known semantic, from typedef/aggregate names anywhere
  /// on the chain.
  enum class SemanticKind : uint8_t {
    SEM_None,
    SEM_SizeT,
    SEM_File,
    SEM_String,
    SEM_VaList,
    SEM_TimeT,
  };
  SemanticKind Semantic = SemanticKind::SEM_None;
};

TypeTraits::SemanticKind semanticForName(const std::string &Name) {
  using SK = TypeTraits::SemanticKind;
  if (Name == "size_t" || Name == "ssize_t")
    return SK::SEM_SizeT;
  if (Name == "FILE")
    return SK::SEM_File;
  if (Name == "string" || Name == "basic_string<char, ...>")
    return SK::SEM_String;
  if (Name == "va_list")
    return SK::SEM_VaList;
  if (Name == "time_t" || Name == "clock_t")
    return SK::SEM_TimeT;
  return SK::SEM_None;
}

/// Strips const/volatile/typedef, recording const-ness and the first
/// recognized well-known name.
const SrcType *stripNoting(const SrcType *T, bool &SawConst,
                           TypeTraits::SemanticKind &Semantic) {
  while (true) {
    if (Semantic == TypeTraits::SemanticKind::SEM_None && !T->Name.empty())
      Semantic = semanticForName(T->Name);
    switch (T->Kind) {
    case SrcTypeKind::ST_Const:
      SawConst = true;
      T = T->Inner.get();
      continue;
    case SrcTypeKind::ST_Volatile:
    case SrcTypeKind::ST_Typedef:
      T = T->Inner.get();
      continue;
    default:
      return T;
    }
  }
}

TypeTraits computeTraits(const SrcTypeRef &Type) {
  TypeTraits Traits;
  bool SelfConst = false;
  const SrcType *Layout = stripNoting(Type.get(), SelfConst, Traits.Semantic);
  Traits.Layout = Layout;
  switch (Layout->Kind) {
  case SrcTypeKind::ST_Pointer:
  case SrcTypeKind::ST_Reference: {
    Traits.Shape = TypeTraits::ShapeKind::SK_Pointer;
    bool PointeeConst = false;
    const SrcType *Pointee = Layout->Inner
                                 ? stripNoting(Layout->Inner.get(),
                                               PointeeConst, Traits.Semantic)
                                 : nullptr;
    Traits.PointeeConst = PointeeConst;
    if (!Pointee || Pointee->Kind == SrcTypeKind::ST_Void ||
        Pointee->Kind == SrcTypeKind::ST_Forward ||
        Pointee->Kind == SrcTypeKind::ST_Nullptr) {
      Traits.PointeeIncomplete = true;
      Traits.Pointee = Pointee;
    } else if (Pointee->Kind == SrcTypeKind::ST_FuncProto) {
      Traits.Shape = TypeTraits::ShapeKind::SK_FuncPtr;
      Traits.Pointee = Pointee;
    } else {
      Traits.Pointee = Pointee;
    }
    break;
  }
  case SrcTypeKind::ST_Array: {
    Traits.Shape = TypeTraits::ShapeKind::SK_Array;
    bool ElementConst = false;
    Traits.Pointee = Layout->Inner
                         ? stripNoting(Layout->Inner.get(), ElementConst,
                                       Traits.Semantic)
                         : nullptr;
    Traits.PointeeConst = ElementConst;
    break;
  }
  case SrcTypeKind::ST_Struct:
  case SrcTypeKind::ST_Class:
  case SrcTypeKind::ST_Union:
    // Aggregate by value: the ABI passes a byval pointer, so usage looks
    // exactly like a pointer-to-aggregate dereference.
    Traits.Shape = TypeTraits::ShapeKind::SK_Pointer;
    Traits.Pointee = Layout;
    break;
  default:
    Traits.Shape = TypeTraits::ShapeKind::SK_Value;
    break;
  }
  return Traits;
}

/// The load opcode for reading a value of primitive kind K from memory.
Opcode loadOpcodeFor(SrcPrimKind K) {
  switch (K) {
  case SrcPrimKind::SP_Bool:
  case SrcPrimKind::SP_U8:
  case SrcPrimKind::SP_Char: // String data reads are unsigned in practice.
    return Opcode::I32Load8U;
  case SrcPrimKind::SP_I8:
    return Opcode::I32Load8S;
  case SrcPrimKind::SP_I16:
    return Opcode::I32Load16S;
  case SrcPrimKind::SP_U16:
  case SrcPrimKind::SP_WChar16:
    return Opcode::I32Load16U;
  case SrcPrimKind::SP_I32:
  case SrcPrimKind::SP_U32:
  case SrcPrimKind::SP_WChar32:
    return Opcode::I32Load;
  case SrcPrimKind::SP_I64:
  case SrcPrimKind::SP_U64:
    return Opcode::I64Load;
  case SrcPrimKind::SP_F32:
    return Opcode::F32Load;
  case SrcPrimKind::SP_F64:
  case SrcPrimKind::SP_F128:   // Accessed as doubles in lowered code.
  case SrcPrimKind::SP_Complex:
    return Opcode::F64Load;
  }
  assert(false && "unknown primitive");
  return Opcode::I32Load;
}

Opcode storeOpcodeFor(SrcPrimKind K) {
  switch (K) {
  case SrcPrimKind::SP_Bool:
  case SrcPrimKind::SP_U8:
  case SrcPrimKind::SP_I8:
  case SrcPrimKind::SP_Char:
    return Opcode::I32Store8;
  case SrcPrimKind::SP_I16:
  case SrcPrimKind::SP_U16:
  case SrcPrimKind::SP_WChar16:
    return Opcode::I32Store16;
  case SrcPrimKind::SP_I32:
  case SrcPrimKind::SP_U32:
  case SrcPrimKind::SP_WChar32:
    return Opcode::I32Store;
  case SrcPrimKind::SP_I64:
  case SrcPrimKind::SP_U64:
    return Opcode::I64Store;
  case SrcPrimKind::SP_F32:
    return Opcode::F32Store;
  case SrcPrimKind::SP_F64:
  case SrcPrimKind::SP_F128:
  case SrcPrimKind::SP_Complex:
    return Opcode::F64Store;
  }
  assert(false && "unknown primitive");
  return Opcode::I32Store;
}

ValType valTypeOfLoad(Opcode Load) {
  switch (Load) {
  case Opcode::I64Load:
    return ValType::I64;
  case Opcode::F32Load:
    return ValType::F32;
  case Opcode::F64Load:
    return ValType::F64;
  default:
    return ValType::I32;
  }
}

/// Compiles one SrcFunction body.
class FunctionCompiler {
public:
  FunctionCompiler(Module &M, const SrcFunction &Func, Rng &R,
                   const CodegenOptions &Options)
      : M(M), Func(Func), R(R), Options(Options) {
    for (const auto &[Name, Type] : Func.Params)
      ParamValTypes.push_back(Type->lowerValType());
    HasReturn = Func.ReturnType &&
                Func.ReturnType->Kind != SrcTypeKind::ST_Void;
    if (HasReturn)
      ReturnValType = Func.ReturnType->lowerValType();
  }

  wasm::Function run();

private:
  // --- Locals -----------------------------------------------------------
  uint32_t newLocal(ValType Type) {
    ExtraLocals.push_back(Type);
    return static_cast<uint32_t>(ParamValTypes.size() + ExtraLocals.size() -
                                 1);
  }
  uint32_t scratch(ValType Type) {
    int Slot = static_cast<int>(Type);
    if (!Scratch[Slot])
      Scratch[Slot] = newLocal(Type);
    return *Scratch[Slot];
  }

  // --- Emission helpers ---------------------------------------------------
  void emit(Instr I) { Body.push_back(std::move(I)); }

  void emitConstOf(ValType Type) {
    switch (Type) {
    case ValType::I32:
      emit(Instr::i32Const(static_cast<int32_t>(R.nextInRange(0, 255))));
      break;
    case ValType::I64:
      emit(Instr::i64Const(R.nextInRange(0, 4095)));
      break;
    case ValType::F32:
      emit(Instr::f32Const(static_cast<float>(R.nextInRange(0, 100)) * 0.5f));
      break;
    case ValType::F64:
      emit(Instr::f64Const(static_cast<double>(R.nextInRange(0, 1000)) *
                           0.25));
      break;
    }
  }

  /// Pushes an i32 condition value.
  void emitCondition() {
    switch (R.nextBelow(3)) {
    case 0:
      emit(Instr::globalGet(0));
      break;
    case 1:
      emit(Instr::localGet(scratch(ValType::I32)));
      break;
    default:
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(2))));
      break;
    }
  }

  /// Consumes the value of Type on top of the stack (drop or store to a
  /// scratch local).
  void consumeTop(ValType Type) {
    if (R.nextBool(0.5))
      emit(Instr(Opcode::Drop));
    else
      emit(Instr::localSet(scratch(Type)));
  }

  /// Pushes arguments matching import Import's signature and calls it;
  /// result (if any) is consumed. SlotForParam: if >= 0, that local is
  /// pushed for the argument position ArgPosition.
  void emitImportCall(StandardImport Import, int ParamLocal = -1,
                      unsigned ArgPosition = 0);

  /// One static "data segment" address constant.
  int32_t staticAddress() {
    return static_cast<int32_t>(1024 + 8 * R.nextBelow(512));
  }

  // --- Idioms -------------------------------------------------------------
  void emitNoiseSnippet();
  void emitParamUsage(uint32_t ParamIndex);
  void emitValueUsage(uint32_t Local, const TypeTraits &Traits);
  void emitPointerUsage(uint32_t Local, const TypeTraits &Traits);
  void emitArrayUsage(uint32_t Local, const TypeTraits &Traits);
  void emitFuncPtrUsage(uint32_t Local, const TypeTraits &Traits);
  void emitAggregateAccess(uint32_t Local, const SrcType &Aggregate,
                           bool Const, bool IsClass);
  void emitStringScanLoop(uint32_t Local, unsigned Stride);
  void emitSemanticFlavor(uint32_t Local, const TypeTraits &Traits);
  void emitReturnValue();

  uint32_t internFuncType(std::vector<ValType> Params,
                          std::vector<ValType> Results) {
    FuncType Type;
    Type.Params = std::move(Params);
    Type.Results = std::move(Results);
    return M.internType(Type);
  }

  Module &M;
  const SrcFunction &Func;
  Rng &R;
  CodegenOptions Options;

  std::vector<ValType> ParamValTypes;
  std::vector<ValType> ExtraLocals;
  std::optional<uint32_t> Scratch[4];
  std::vector<Instr> Body;
  bool HasReturn = false;
  ValType ReturnValType = ValType::I32;
};

void FunctionCompiler::emitImportCall(StandardImport Import, int ParamLocal,
                                      unsigned ArgPosition) {
  const FuncType &Type = M.Types[M.Imports[Import].TypeIndex];
  for (unsigned ArgIndex = 0; ArgIndex < Type.Params.size(); ++ArgIndex) {
    if (ParamLocal >= 0 && ArgIndex == ArgPosition)
      emit(Instr::localGet(static_cast<uint32_t>(ParamLocal)));
    else
      emitConstOf(Type.Params[ArgIndex]);
  }
  emit(Instr::call(Import));
  for (ValType ResultType : Type.Results)
    consumeTop(ResultType);
}

void FunctionCompiler::emitNoiseSnippet() {
  switch (R.nextBelow(8)) {
  case 0:
    emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(1024))));
    emit(Instr::i32Const(static_cast<int32_t>(1 + R.nextBelow(7))));
    emit(Instr(Opcode::I32Add));
    emit(Instr(Opcode::Drop));
    break;
  case 1:
    emit(Instr::globalGet(0));
    emit(Instr::i32Const(1));
    emit(Instr(Opcode::I32Add));
    emit(Instr(Opcode::GlobalSet, 0));
    break;
  case 2:
    emit(Instr(Opcode::Nop));
    break;
  case 3:
    emitImportCall(ImportNotify);
    break;
  case 4:
    emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(65536))));
    emit(Instr::localSet(scratch(ValType::I32)));
    break;
  case 5:
    emit(Instr::f64Const(static_cast<double>(R.nextBelow(100))));
    emit(Instr(Opcode::F64Sqrt));
    emit(Instr(Opcode::Drop));
    break;
  case 6:
    // Store an i32 to static data.
    emit(Instr::i32Const(staticAddress()));
    emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(256))));
    emit(Instr::store(Opcode::I32Store, 0, 2));
    break;
  default:
    emit(Instr::globalGet(1));
    emit(Instr::i32Const(16));
    emit(Instr(Opcode::I32Sub));
    emit(Instr(Opcode::Drop));
    break;
  }
}

void FunctionCompiler::emitStringScanLoop(uint32_t Local, unsigned Stride) {
  // Canonical strlen/strchr-style scan:
  //   block
  //     loop
  //       local.get P ; local.get idx ; i32.add
  //       i32.load8_u ; i32.eqz ; br_if 1
  //       local.get idx ; i32.const stride ; i32.add ; local.set idx
  //       br 0
  //     end
  //   end
  uint32_t Index = scratch(ValType::I32);
  emit(Instr::block());
  emit(Instr::loop());
  emit(Instr::localGet(Local));
  emit(Instr::localGet(Index));
  emit(Instr(Opcode::I32Add));
  emit(Instr::load(Stride == 1 ? Opcode::I32Load8U : Opcode::I32Load,
                   0, 0));
  emit(Instr(Opcode::I32Eqz));
  emit(Instr::brIf(1));
  emit(Instr::localGet(Index));
  emit(Instr::i32Const(static_cast<int32_t>(Stride)));
  emit(Instr(Opcode::I32Add));
  emit(Instr::localSet(Index));
  emit(Instr::br(0));
  emit(Instr(Opcode::End));
  emit(Instr(Opcode::End));
}

void FunctionCompiler::emitAggregateAccess(uint32_t Local,
                                           const SrcType &Aggregate,
                                           bool Const, bool IsClass) {
  // Field accesses at the aggregate's real offsets (already accounting for
  // any vtable slot), with widths taken from the field types — pointers to
  // different structs produce different offset/width fingerprints.
  const std::vector<SrcField> &Fields = Aggregate.Fields;
  unsigned NumAccesses = 1 + static_cast<unsigned>(R.nextBelow(3));
  bool DidStore = false;
  for (unsigned Access = 0; Access < NumAccesses && !Fields.empty();
       ++Access) {
    const SrcField &Field = Fields[R.nextBelow(Fields.size())];
    const SrcType &FieldLayout = Field.Type->strippedForLayout();
    uint32_t Offset = Field.ByteOffset;
    SrcPrimKind Prim = FieldLayout.Kind == SrcTypeKind::ST_Prim
                           ? FieldLayout.Prim
                           : SrcPrimKind::SP_I32; // Pointer/array fields.
    if (!Const && !DidStore && R.nextBool(0.45)) {
      // Write through the (mutable) pointer: the signal that distinguishes
      // 'pointer struct' from 'pointer const struct'.
      Opcode Store = storeOpcodeFor(Prim);
      emit(Instr::localGet(Local));
      ValType StoredType = valTypeOfLoad(loadOpcodeFor(Prim));
      emitConstOf(StoredType);
      emit(Instr::store(Store, Offset, 0));
      DidStore = true;
    } else {
      Opcode Load = loadOpcodeFor(Prim);
      emit(Instr::localGet(Local));
      emit(Instr::load(Load, Offset, 0));
      consumeTop(valTypeOfLoad(Load));
    }
  }

  if (IsClass && R.nextBool(0.6)) {
    // Virtual dispatch: load vtable from offset 0, load a slot, then
    // call_indirect with `this` as the first argument.
    uint32_t SigIndex = internFuncType({ValType::I32}, {ValType::I32});
    emit(Instr::localGet(Local)); // this
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 0, 2)); // vtable
    emit(Instr::load(Opcode::I32Load,
                     4 * static_cast<uint32_t>(R.nextBelow(6)), 2));
    emit(Instr(Opcode::CallIndirect, SigIndex, 0));
    consumeTop(ValType::I32);
  } else if (R.nextBool(0.3)) {
    // Pass the object pointer to a library helper.
    emitImportCall(R.nextBool(0.5) ? ImportRelease : ImportScan,
                   static_cast<int>(Local), 0);
  }
}

void FunctionCompiler::emitSemanticFlavor(uint32_t Local,
                                          const TypeTraits &Traits) {
  using SK = TypeTraits::SemanticKind;
  switch (Traits.Semantic) {
  case SK::SEM_SizeT:
    switch (R.nextBelow(3)) {
    case 0:
      // Allocation with the size.
      emit(Instr::localGet(Local));
      emit(Instr::call(ImportAlloc));
      consumeTop(ValType::I32);
      break;
    case 1:
      // Page-growth arithmetic: size >> 16; memory.grow.
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(16));
      emit(Instr(Opcode::I32ShrU));
      emit(Instr(Opcode::MemoryGrow, 0));
      emit(Instr(Opcode::Drop));
      break;
    default:
      // Pointer arithmetic: base + size.
      emit(Instr::i32Const(staticAddress()));
      emit(Instr::localGet(Local));
      emit(Instr(Opcode::I32Add));
      emit(Instr(Opcode::Drop));
      break;
    }
    break;
  case SK::SEM_File:
    // Flags check: (f->flags & 32) and an fread-style call with the handle
    // as the last argument.
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 0, 2));
    emit(Instr::i32Const(32));
    emit(Instr(Opcode::I32And));
    emit(Instr(Opcode::I32Eqz));
    emit(Instr::ifOp());
    emitImportCall(ImportIo, static_cast<int>(Local), 3);
    emit(Instr(Opcode::End));
    break;
  case SK::SEM_String:
    // data()/size() access pair.
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 4, 2)); // data pointer (after vtable).
    emit(Instr::localSet(scratch(ValType::I32)));
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 8, 2)); // size.
    emit(Instr(Opcode::Drop));
    break;
  case SK::SEM_VaList:
    // va_arg: read current slot, then advance the cursor by 4.
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 0, 2));
    emit(Instr(Opcode::Drop));
    emit(Instr::localGet(Local));
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::I32Load, 0, 2));
    emit(Instr::i32Const(4));
    emit(Instr(Opcode::I32Add));
    emit(Instr::store(Opcode::I32Store, 0, 2));
    break;
  case SK::SEM_TimeT:
    // Seconds arithmetic with calendar constants.
    emit(Instr::localGet(Local));
    emit(Instr::i64Const(R.nextBool(0.5) ? 86400 : 3600));
    emit(Instr(R.nextBool(0.5) ? Opcode::I64DivS : Opcode::I64RemS));
    consumeTop(ValType::I64);
    break;
  case SK::SEM_None:
    break;
  }
}

void FunctionCompiler::emitValueUsage(uint32_t Local,
                                      const TypeTraits &Traits) {
  const SrcType &Layout = *Traits.Layout;
  if (Layout.Kind == SrcTypeKind::ST_Enum) {
    // Dispatch against small enumerator constants.
    if (R.nextBool(0.5)) {
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(5))));
      emit(Instr(Opcode::I32Eq));
      emit(Instr::ifOp());
      emitNoiseSnippet();
      emit(Instr(Opcode::End));
    } else {
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(2 + R.nextBelow(6))));
      emit(Instr(Opcode::I32LtU));
      emit(Instr(Opcode::Drop));
    }
    return;
  }
  if (Layout.Kind != SrcTypeKind::ST_Prim) {
    // Nullptr-typed or other unusual by-value: just a null-ish check.
    emit(Instr::localGet(Local));
    emit(Instr(Opcode::I32Eqz));
    emit(Instr(Opcode::Drop));
    return;
  }

  switch (Layout.Prim) {
  case SrcPrimKind::SP_Bool:
    switch (R.nextBelow(3)) {
    case 0:
      emit(Instr::localGet(Local));
      emit(Instr::ifOp());
      emitNoiseSnippet();
      emit(Instr(Opcode::End));
      break;
    case 1:
      emit(Instr::localGet(Local));
      emit(Instr(Opcode::I32Eqz));
      emit(Instr::localSet(scratch(ValType::I32)));
      break;
    default:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(1));
      emit(Instr(Opcode::I32And));
      emit(Instr(Opcode::Drop));
      break;
    }
    break;
  case SrcPrimKind::SP_I32:
    switch (R.nextBelow(4)) {
    case 0:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(64))));
      emit(Instr(Opcode::I32Add));
      emit(Instr::localSet(scratch(ValType::I32)));
      break;
    case 1:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(0));
      emit(Instr(Opcode::I32LtS));
      emit(Instr::ifOp());
      emitNoiseSnippet();
      emit(Instr(Opcode::End));
      break;
    case 2:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(2 + R.nextBelow(9))));
      emit(Instr(Opcode::I32DivS));
      emit(Instr(Opcode::Drop));
      break;
    default:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(31));
      emit(Instr(Opcode::I32ShrS));
      emit(Instr(Opcode::Drop));
      break;
    }
    break;
  case SrcPrimKind::SP_U32:
  case SrcPrimKind::SP_WChar32:
    switch (R.nextBelow(3)) {
    case 0:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(1 + R.nextBelow(16))));
      emit(Instr(Opcode::I32ShrU));
      emit(Instr(Opcode::Drop));
      break;
    case 1:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(2 + R.nextBelow(9))));
      emit(Instr(Opcode::I32DivU));
      emit(Instr(Opcode::Drop));
      break;
    default:
      emit(Instr::localGet(Local));
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(4096))));
      emit(Instr(Opcode::I32LtU));
      emit(Instr::ifOp());
      emitNoiseSnippet();
      emit(Instr(Opcode::End));
      break;
    }
    break;
  case SrcPrimKind::SP_I8:
    emit(Instr::localGet(Local));
    emit(Instr(Opcode::I32Extend8S));
    consumeTop(ValType::I32);
    break;
  case SrcPrimKind::SP_U8:
    emit(Instr::localGet(Local));
    emit(Instr::i32Const(255));
    emit(Instr(Opcode::I32And));
    consumeTop(ValType::I32);
    break;
  case SrcPrimKind::SP_I16:
    emit(Instr::localGet(Local));
    emit(Instr(Opcode::I32Extend16S));
    consumeTop(ValType::I32);
    break;
  case SrcPrimKind::SP_U16:
  case SrcPrimKind::SP_WChar16:
    emit(Instr::localGet(Local));
    emit(Instr::i32Const(65535));
    emit(Instr(Opcode::I32And));
    consumeTop(ValType::I32);
    break;
  case SrcPrimKind::SP_Char:
    // Character comparisons against printable ASCII.
    emit(Instr::localGet(Local));
    emit(Instr::i32Const(static_cast<int32_t>(32 + R.nextBelow(95))));
    emit(Instr(R.nextBool(0.5) ? Opcode::I32Eq : Opcode::I32Ne));
    emit(Instr::ifOp());
    emit(Instr(Opcode::Nop));
    emit(Instr(Opcode::End));
    break;
  case SrcPrimKind::SP_I64:
    emit(Instr::localGet(Local));
    emit(Instr::i64Const(R.nextInRange(1, 1023)));
    emit(Instr(R.nextBool(0.5) ? Opcode::I64Add : Opcode::I64Mul));
    consumeTop(ValType::I64);
    break;
  case SrcPrimKind::SP_U64:
    emit(Instr::localGet(Local));
    emit(Instr::i64Const(static_cast<int64_t>(1 + R.nextBelow(32))));
    emit(Instr(R.nextBool(0.5) ? Opcode::I64ShrU : Opcode::I64DivU));
    consumeTop(ValType::I64);
    break;
  case SrcPrimKind::SP_F32:
    if (R.nextBool(0.4)) {
      emitImportCall(ImportMathF, static_cast<int>(Local), 0);
    } else {
      emit(Instr::localGet(Local));
      emit(Instr::f32Const(static_cast<float>(R.nextBelow(16)) + 0.5f));
      emit(Instr(R.nextBool(0.5) ? Opcode::F32Mul : Opcode::F32Add));
      consumeTop(ValType::F32);
    }
    break;
  case SrcPrimKind::SP_F64:
    switch (R.nextBelow(3)) {
    case 0:
      emitImportCall(ImportMath, static_cast<int>(Local), 0);
      break;
    case 1:
      emit(Instr::localGet(Local));
      emit(Instr::f64Const(0.0));
      emit(Instr(Opcode::F64Lt));
      emit(Instr::ifOp());
      emitNoiseSnippet();
      emit(Instr(Opcode::End));
      break;
    default:
      emit(Instr::localGet(Local));
      emit(Instr::f64Const(static_cast<double>(R.nextBelow(100)) * 0.125));
      emit(Instr(R.nextBool(0.5) ? Opcode::F64Mul : Opcode::F64Add));
      consumeTop(ValType::F64);
      break;
    }
    break;
  case SrcPrimKind::SP_F128:
  case SrcPrimKind::SP_Complex:
    // Passed indirectly: two f64 lane loads.
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::F64Load, 0, 3));
    emit(Instr(Opcode::Drop));
    emit(Instr::localGet(Local));
    emit(Instr::load(Opcode::F64Load, 8, 3));
    emit(Instr(Opcode::Drop));
    break;
  }
}

void FunctionCompiler::emitPointerUsage(uint32_t Local,
                                        const TypeTraits &Traits) {
  // Frequent null check around the dereference.
  bool NullChecked = R.nextBool(0.45);
  if (NullChecked) {
    emit(Instr::block());
    emit(Instr::localGet(Local));
    emit(Instr(Opcode::I32Eqz));
    emit(Instr::brIf(0));
  }

  if (Traits.PointeeIncomplete) {
    // Opaque pointer: no dereference is possible — only pass-along and
    // null tests. This absence of loads is the learnable cue for
    // 'pointer unknown'.
    if (R.nextBool(0.6))
      emitImportCall(R.nextBool(0.5) ? ImportRelease : ImportCopy,
                     static_cast<int>(Local), 0);
    else {
      emit(Instr::localGet(Local));
      emit(Instr::localSet(scratch(ValType::I32)));
    }
  } else if (Traits.Pointee) {
    const SrcType &Pointee = *Traits.Pointee;
    switch (Pointee.Kind) {
    case SrcTypeKind::ST_Prim: {
      if (Pointee.Prim == SrcPrimKind::SP_Char && R.nextBool(0.65)) {
        if (R.nextBool(0.5))
          emitStringScanLoop(Local, 1);
        else
          emitImportCall(R.nextBool(0.5) ? ImportScan : ImportLog,
                         static_cast<int>(Local), 0);
      } else if ((Pointee.Prim == SrcPrimKind::SP_WChar32 ||
                  Pointee.Prim == SrcPrimKind::SP_WChar16) &&
                 R.nextBool(0.5)) {
        emitStringScanLoop(Local, primByteSize(Pointee.Prim));
      } else {
        Opcode Load = loadOpcodeFor(Pointee.Prim);
        emit(Instr::localGet(Local));
        emit(Instr::load(Load,
                         primByteSize(Pointee.Prim) *
                             static_cast<uint32_t>(R.nextBelow(3)),
                         0));
        consumeTop(valTypeOfLoad(Load));
        if (!Traits.PointeeConst && R.nextBool(0.55)) {
          // Out-parameter write-back.
          emit(Instr::localGet(Local));
          emitConstOf(valTypeOfLoad(Load));
          emit(Instr::store(storeOpcodeFor(Pointee.Prim), 0, 0));
        }
      }
      break;
    }
    case SrcTypeKind::ST_Struct:
    case SrcTypeKind::ST_Union:
      emitAggregateAccess(Local, Pointee, Traits.PointeeConst,
                          /*IsClass=*/false);
      break;
    case SrcTypeKind::ST_Class:
      emitAggregateAccess(Local, Pointee, Traits.PointeeConst,
                          /*IsClass=*/true);
      break;
    case SrcTypeKind::ST_Enum:
      emit(Instr::localGet(Local));
      emit(Instr::load(Opcode::I32Load, 0, 2));
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(5))));
      emit(Instr(Opcode::I32Eq));
      emit(Instr(Opcode::Drop));
      break;
    case SrcTypeKind::ST_Pointer: {
      // Pointer-to-pointer: load the inner pointer, then maybe deref again.
      uint32_t Inner = scratch(ValType::I32);
      emit(Instr::localGet(Local));
      emit(Instr::load(Opcode::I32Load, 0, 2));
      emit(Instr::localSet(Inner));
      if (R.nextBool(0.5)) {
        const SrcType &Innermost = Pointee.Inner->strippedForLayout();
        Opcode Load = Innermost.Kind == SrcTypeKind::ST_Prim
                          ? loadOpcodeFor(Innermost.Prim)
                          : Opcode::I32Load;
        emit(Instr::localGet(Inner));
        emit(Instr::load(Load, 0, 0));
        consumeTop(valTypeOfLoad(Load));
      }
      if (!Traits.PointeeConst && R.nextBool(0.4)) {
        // Write a fresh pointer back (realloc-style out param).
        emit(Instr::localGet(Local));
        emitConstOf(ValType::I32);
        emit(Instr::call(ImportAlloc));
        emit(Instr::store(Opcode::I32Store, 0, 2));
      }
      break;
    }
    case SrcTypeKind::ST_Array: {
      // Pointer to array: element indexing.
      TypeTraits ElementTraits;
      ElementTraits.Shape = TypeTraits::ShapeKind::SK_Array;
      ElementTraits.Pointee =
          Pointee.Inner ? &Pointee.Inner->strippedForLayout() : nullptr;
      emitArrayUsage(Local, ElementTraits);
      break;
    }
    default:
      emit(Instr::localGet(Local));
      emit(Instr::localSet(scratch(ValType::I32)));
      break;
    }
  }

  emitSemanticFlavor(Local, Traits);
  if (NullChecked)
    emit(Instr(Opcode::End));
}

void FunctionCompiler::emitArrayUsage(uint32_t Local,
                                      const TypeTraits &Traits) {
  const SrcType *Element = Traits.Pointee;
  SrcPrimKind Prim = Element && Element->Kind == SrcTypeKind::ST_Prim
                         ? Element->Prim
                         : SrcPrimKind::SP_I32;
  uint32_t ElementSize = primByteSize(Prim);
  Opcode Load = loadOpcodeFor(Prim);
  // arr[i]: base + i * size.
  emit(Instr::localGet(Local));
  emit(Instr::localGet(scratch(ValType::I32)));
  if (ElementSize > 1) {
    emit(Instr::i32Const(static_cast<int32_t>(ElementSize)));
    emit(Instr(Opcode::I32Mul));
  }
  emit(Instr(Opcode::I32Add));
  emit(Instr::load(Load, ElementSize * static_cast<uint32_t>(R.nextBelow(2)),
                   0));
  consumeTop(valTypeOfLoad(Load));
}

void FunctionCompiler::emitFuncPtrUsage(uint32_t Local,
                                        const TypeTraits &Traits) {
  // Guarded indirect call through the function pointer.
  const SrcType *Proto = Traits.Pointee;
  std::vector<ValType> Params;
  std::vector<ValType> Results;
  if (Proto) {
    for (const SrcTypeRef &Param : Proto->ProtoParams)
      Params.push_back(Param->lowerValType());
    if (Proto->ProtoReturn && Proto->ProtoReturn->Kind != SrcTypeKind::ST_Void)
      Results.push_back(Proto->ProtoReturn->lowerValType());
  }
  uint32_t SigIndex = internFuncType(Params, Results);
  emit(Instr::block());
  emit(Instr::localGet(Local));
  emit(Instr(Opcode::I32Eqz));
  emit(Instr::brIf(0));
  for (ValType Param : Params)
    emitConstOf(Param);
  emit(Instr::localGet(Local));
  emit(Instr(Opcode::CallIndirect, SigIndex, 0));
  for (ValType ResultType : Results)
    consumeTop(ResultType);
  emit(Instr(Opcode::End));
}

void FunctionCompiler::emitParamUsage(uint32_t ParamIndex) {
  TypeTraits Traits = computeTraits(Func.Params[ParamIndex].second);
  switch (Traits.Shape) {
  case TypeTraits::ShapeKind::SK_Value:
    emitValueUsage(ParamIndex, Traits);
    emitSemanticFlavor(ParamIndex, Traits);
    break;
  case TypeTraits::ShapeKind::SK_Pointer:
    emitPointerUsage(ParamIndex, Traits);
    break;
  case TypeTraits::ShapeKind::SK_Array:
    emitArrayUsage(ParamIndex, Traits);
    break;
  case TypeTraits::ShapeKind::SK_FuncPtr:
    emitFuncPtrUsage(ParamIndex, Traits);
    break;
  }
}

void FunctionCompiler::emitReturnValue() {
  assert(HasReturn && "return value for void function");
  TypeTraits Traits = computeTraits(Func.ReturnType);
  const SrcType &Layout = *Traits.Layout;

  // Pointer-shaped returns.
  if (Traits.Shape == TypeTraits::ShapeKind::SK_Pointer ||
      Traits.Shape == TypeTraits::ShapeKind::SK_Array ||
      Traits.Shape == TypeTraits::ShapeKind::SK_FuncPtr) {
    if (Traits.Semantic == TypeTraits::SemanticKind::SEM_File ||
        (Traits.Pointee &&
         (Traits.Pointee->Kind == SrcTypeKind::ST_Struct ||
          Traits.Pointee->Kind == SrcTypeKind::ST_Class ||
          Traits.Pointee->Kind == SrcTypeKind::ST_Union))) {
      // Allocate, initialize a field, return the object.
      uint32_t Pointer = scratch(ValType::I32);
      emit(Instr::i32Const(
          static_cast<int32_t>(std::max<uint32_t>(Traits.Pointee->byteSize(),
                                                  8))));
      emit(Instr::call(ImportAlloc));
      emit(Instr::localTee(Pointer));
      emit(Instr::load(Opcode::I32Load, 0, 2));
      emit(Instr(Opcode::Drop));
      if (Traits.Pointee->Kind == SrcTypeKind::ST_Class) {
        // Store the vtable pointer: the constructor fingerprint.
        emit(Instr::localGet(Pointer));
        emit(Instr::i32Const(staticAddress()));
        emit(Instr::store(Opcode::I32Store, 0, 2));
      }
      emit(Instr::localGet(Pointer));
      return;
    }
    if (Traits.Pointee && Traits.Pointee->Kind == SrcTypeKind::ST_Prim &&
        Traits.Pointee->Prim == SrcPrimKind::SP_Char) {
      // Return a string: static address or scanned pointer.
      if (R.nextBool(0.5)) {
        emit(Instr::i32Const(staticAddress()));
      } else {
        uint32_t Pointer = scratch(ValType::I32);
        emit(Instr::i32Const(staticAddress()));
        emit(Instr::localTee(Pointer));
        emit(Instr::load(Opcode::I32Load8U, 0, 0));
        emit(Instr(Opcode::Drop));
        emit(Instr::localGet(Pointer));
      }
      return;
    }
    if (Traits.PointeeIncomplete) {
      // Opaque pointer return: allocation result, untouched.
      emitConstOf(ValType::I32);
      emit(Instr::call(ImportAlloc));
      return;
    }
    // Pointer to primitive: base + offset arithmetic.
    emit(Instr::i32Const(staticAddress()));
    emit(Instr::localGet(scratch(ValType::I32)));
    emit(Instr(Opcode::I32Add));
    return;
  }

  // Semantic scalars.
  if (Traits.Semantic == TypeTraits::SemanticKind::SEM_SizeT) {
    if (R.nextBool(0.5)) {
      emit(Instr(Opcode::MemorySize, 0));
      emit(Instr::i32Const(65536));
      emit(Instr(Opcode::I32Mul));
    } else {
      emit(Instr::localGet(scratch(ValType::I32)));
      emit(Instr::i32Const(15));
      emit(Instr(Opcode::I32Add));
      emit(Instr::i32Const(-16));
      emit(Instr(Opcode::I32And));
    }
    return;
  }
  if (Traits.Semantic == TypeTraits::SemanticKind::SEM_TimeT) {
    emit(Instr::localGet(scratch(ValType::I64)));
    emit(Instr::i64Const(86400));
    emit(Instr(Opcode::I64Mul));
    return;
  }

  if (Layout.Kind == SrcTypeKind::ST_Enum) {
    emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(6))));
    return;
  }
  if (Layout.Kind != SrcTypeKind::ST_Prim) {
    emitConstOf(ReturnValType);
    return;
  }

  switch (Layout.Prim) {
  case SrcPrimKind::SP_Bool:
    if (R.nextBool(0.5)) {
      emit(Instr::localGet(scratch(ValType::I32)));
      emit(Instr(Opcode::I32Eqz));
    } else {
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(2))));
    }
    break;
  case SrcPrimKind::SP_I32:
    if (R.nextBool(0.4)) {
      emit(Instr::i32Const(
          static_cast<int32_t>(R.nextInRange(-2, 64))));
    } else {
      emit(Instr::localGet(scratch(ValType::I32)));
      emit(Instr::i32Const(static_cast<int32_t>(R.nextBelow(32))));
      emit(Instr(R.nextBool(0.7) ? Opcode::I32Add : Opcode::I32Sub));
    }
    break;
  case SrcPrimKind::SP_U32:
  case SrcPrimKind::SP_WChar32:
    emit(Instr::localGet(scratch(ValType::I32)));
    emit(Instr::i32Const(static_cast<int32_t>(1 + R.nextBelow(8))));
    emit(Instr(Opcode::I32ShrU));
    break;
  case SrcPrimKind::SP_I8:
    emit(Instr::i32Const(staticAddress()));
    emit(Instr::load(Opcode::I32Load8S, 0, 0));
    break;
  case SrcPrimKind::SP_U8:
    emit(Instr::i32Const(staticAddress()));
    emit(Instr::load(Opcode::I32Load8U, 0, 0));
    break;
  case SrcPrimKind::SP_I16:
    emit(Instr::localGet(scratch(ValType::I32)));
    emit(Instr(Opcode::I32Extend16S));
    break;
  case SrcPrimKind::SP_U16:
  case SrcPrimKind::SP_WChar16:
    emit(Instr::localGet(scratch(ValType::I32)));
    emit(Instr::i32Const(65535));
    emit(Instr(Opcode::I32And));
    break;
  case SrcPrimKind::SP_Char:
    if (R.nextBool(0.5)) {
      emit(Instr::i32Const(staticAddress()));
      emit(Instr::load(Opcode::I32Load8U, 0, 0));
    } else {
      emit(Instr::i32Const(static_cast<int32_t>(32 + R.nextBelow(95))));
    }
    break;
  case SrcPrimKind::SP_I64:
    emit(Instr::localGet(scratch(ValType::I64)));
    emit(Instr::i64Const(R.nextInRange(1, 255)));
    emit(Instr(Opcode::I64Add));
    break;
  case SrcPrimKind::SP_U64:
    emit(Instr::localGet(scratch(ValType::I64)));
    emit(Instr::i64Const(static_cast<int64_t>(1 + R.nextBelow(16))));
    emit(Instr(Opcode::I64ShrU));
    break;
  case SrcPrimKind::SP_F32:
    emit(Instr::localGet(scratch(ValType::F32)));
    emit(Instr::f32Const(static_cast<float>(R.nextBelow(8)) + 0.25f));
    emit(Instr(Opcode::F32Mul));
    break;
  case SrcPrimKind::SP_F64:
    emit(Instr::localGet(scratch(ValType::F64)));
    emit(Instr::f64Const(static_cast<double>(R.nextBelow(16)) + 0.5));
    emit(Instr(R.nextBool(0.6) ? Opcode::F64Mul : Opcode::F64Add));
    break;
  case SrcPrimKind::SP_F128:
  case SrcPrimKind::SP_Complex:
    // Returned via pointer in the real ABI; lowered here to a pointer.
    emit(Instr::i32Const(staticAddress()));
    break;
  }
}

wasm::Function FunctionCompiler::run() {
  // Plan the body as a shuffled list of per-parameter usage segments and
  // noise segments.
  struct Segment {
    bool IsNoise;
    uint32_t ParamIndex;
  };
  std::vector<Segment> Segments;
  bool LongFunction = R.nextBool(Options.LongFunctionRate);
  unsigned Repetitions = LongFunction ? 6 + R.nextBelow(14) : 1;
  for (unsigned Rep = 0; Rep < Repetitions; ++Rep) {
    for (uint32_t ParamIndex = 0; ParamIndex < Func.Params.size();
         ++ParamIndex) {
      unsigned Usages = 1 + static_cast<unsigned>(R.nextBelow(2));
      for (unsigned Usage = 0; Usage < Usages; ++Usage)
        Segments.push_back({false, ParamIndex});
    }
    unsigned NoiseCount = static_cast<unsigned>(
        Options.NoiseLevel * (2 + R.nextBelow(3 + 2 * Func.Params.size())));
    for (unsigned Noise = 0; Noise < NoiseCount; ++Noise)
      Segments.push_back({true, 0});
  }
  if (Segments.empty())
    Segments.push_back({true, 0});
  R.shuffle(Segments);

  for (const Segment &Seg : Segments) {
    // Occasionally wrap a segment in control flow.
    unsigned Wrapper = static_cast<unsigned>(R.nextBelow(10));
    if (Wrapper < 2) {
      emit(Instr::block());
      emitCondition();
      emit(Instr::brIf(0));
      Seg.IsNoise ? emitNoiseSnippet() : emitParamUsage(Seg.ParamIndex);
      emit(Instr(Opcode::End));
    } else if (Wrapper < 4) {
      emitCondition();
      emit(Instr::ifOp());
      Seg.IsNoise ? emitNoiseSnippet() : emitParamUsage(Seg.ParamIndex);
      if (R.nextBool(0.35)) {
        emit(Instr(Opcode::Else));
        emitNoiseSnippet();
      }
      emit(Instr(Opcode::End));
    } else {
      Seg.IsNoise ? emitNoiseSnippet() : emitParamUsage(Seg.ParamIndex);
    }

    // Occasional early return (gives return-type windows mid-function).
    if (R.nextBool(0.08)) {
      emitCondition();
      emit(Instr::ifOp());
      if (HasReturn)
        emitReturnValue();
      emit(Instr(Opcode::Return));
      emit(Instr(Opcode::End));
    }
  }

  if (HasReturn)
    emitReturnValue();
  emit(Instr(Opcode::End));

  // Assemble the wasm function.
  wasm::Function Out;
  FuncType Type;
  Type.Params = ParamValTypes;
  if (HasReturn)
    Type.Results.push_back(ReturnValType);
  Out.TypeIndex = M.internType(Type);
  // Group extra locals into runs (the binary encoding unit).
  for (ValType Local : ExtraLocals) {
    if (!Out.Locals.empty() && Out.Locals.back().Type == Local)
      ++Out.Locals.back().Count;
    else
      Out.Locals.push_back({1, Local});
  }
  Out.Body = std::move(Body);
  return Out;
}

} // namespace

uint32_t compileFunction(Module &M, const SrcFunction &Func, Rng &R,
                         const CodegenOptions &Options) {
  FunctionCompiler Compiler(M, Func, R, Options);
  wasm::Function Compiled = Compiler.run();
  M.Functions.push_back(std::move(Compiled));
  uint32_t DefinedIndex = static_cast<uint32_t>(M.Functions.size() - 1);
  M.Exports.push_back({Func.Name, M.functionSpaceIndex(DefinedIndex)});
  return DefinedIndex;
}

} // namespace frontend
} // namespace snowwhite
