#include "frontend/ast.h"

namespace snowwhite {
namespace frontend {

uint32_t primByteSize(SrcPrimKind Kind) {
  switch (Kind) {
  case SrcPrimKind::SP_Bool:
  case SrcPrimKind::SP_I8:
  case SrcPrimKind::SP_U8:
  case SrcPrimKind::SP_Char:
    return 1;
  case SrcPrimKind::SP_I16:
  case SrcPrimKind::SP_U16:
  case SrcPrimKind::SP_WChar16:
    return 2;
  case SrcPrimKind::SP_I32:
  case SrcPrimKind::SP_U32:
  case SrcPrimKind::SP_F32:
  case SrcPrimKind::SP_WChar32:
    return 4;
  case SrcPrimKind::SP_I64:
  case SrcPrimKind::SP_U64:
  case SrcPrimKind::SP_F64:
    return 8;
  case SrcPrimKind::SP_F128:
  case SrcPrimKind::SP_Complex:
    return 16;
  }
  assert(false && "unknown primitive");
  return 4;
}

bool primIsSigned(SrcPrimKind Kind) {
  switch (Kind) {
  case SrcPrimKind::SP_I8:
  case SrcPrimKind::SP_I16:
  case SrcPrimKind::SP_I32:
  case SrcPrimKind::SP_I64:
  case SrcPrimKind::SP_Char:
    return true;
  default:
    return false;
  }
}

const SrcType &SrcType::strippedForLayout() const {
  const SrcType *Current = this;
  while (Current->Kind == SrcTypeKind::ST_Const ||
         Current->Kind == SrcTypeKind::ST_Volatile ||
         Current->Kind == SrcTypeKind::ST_Typedef) {
    assert(Current->Inner && "wrapper without inner type");
    Current = Current->Inner.get();
  }
  return *Current;
}

uint32_t SrcType::byteSize() const {
  const SrcType &Layout = strippedForLayout();
  switch (Layout.Kind) {
  case SrcTypeKind::ST_Void:
    return 0;
  case SrcTypeKind::ST_Prim:
    return primByteSize(Layout.Prim);
  case SrcTypeKind::ST_Pointer:
  case SrcTypeKind::ST_Reference:
  case SrcTypeKind::ST_FuncProto:
  case SrcTypeKind::ST_Nullptr:
    return 4; // wasm32 pointers.
  case SrcTypeKind::ST_Array:
    return Layout.Inner->byteSize() * Layout.ArrayCount;
  case SrcTypeKind::ST_Enum:
    return 4;
  case SrcTypeKind::ST_Forward:
    return 0; // Incomplete type.
  case SrcTypeKind::ST_Struct:
  case SrcTypeKind::ST_Class: {
    uint32_t Size = Layout.HasMethods ? 4 : 0; // vtable pointer.
    for (const SrcField &Field : Layout.Fields) {
      uint32_t End = Field.ByteOffset + Field.Type->byteSize();
      if (End > Size)
        Size = End;
    }
    return Size == 0 ? 1 : Size;
  }
  case SrcTypeKind::ST_Union: {
    uint32_t Size = 0;
    for (const SrcField &Field : Layout.Fields)
      Size = std::max(Size, Field.Type->byteSize());
    return Size == 0 ? 1 : Size;
  }
  default:
    return 4;
  }
}

wasm::ValType SrcType::lowerValType() const {
  const SrcType &Layout = strippedForLayout();
  switch (Layout.Kind) {
  case SrcTypeKind::ST_Prim:
    switch (Layout.Prim) {
    case SrcPrimKind::SP_I64:
    case SrcPrimKind::SP_U64:
      return wasm::ValType::I64;
    case SrcPrimKind::SP_F32:
      return wasm::ValType::F32;
    case SrcPrimKind::SP_F64:
      return wasm::ValType::F64;
    case SrcPrimKind::SP_F128:
    case SrcPrimKind::SP_Complex:
      // Passed indirectly (by pointer) like Emscripten does.
      return wasm::ValType::I32;
    default:
      return wasm::ValType::I32;
    }
  case SrcTypeKind::ST_Void:
    assert(false && "void has no value type");
    return wasm::ValType::I32;
  default:
    // Pointers, references, arrays (decayed), enums, aggregates-by-pointer.
    return wasm::ValType::I32;
  }
}

static SrcTypeRef makeNode(SrcTypeKind Kind) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = Kind;
  return Node;
}

SrcTypeRef makeVoid() { return makeNode(SrcTypeKind::ST_Void); }

SrcTypeRef makePrim(SrcPrimKind Kind) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_Prim;
  Node->Prim = Kind;
  return Node;
}

static SrcTypeRef makeWrapper(SrcTypeKind Kind, SrcTypeRef Inner) {
  assert(Inner && "wrapper over null type");
  auto Node = std::make_shared<SrcType>();
  Node->Kind = Kind;
  Node->Inner = std::move(Inner);
  return Node;
}

SrcTypeRef makePointer(SrcTypeRef Pointee) {
  return makeWrapper(SrcTypeKind::ST_Pointer, std::move(Pointee));
}

SrcTypeRef makeReference(SrcTypeRef Referent) {
  return makeWrapper(SrcTypeKind::ST_Reference, std::move(Referent));
}

SrcTypeRef makeArray(SrcTypeRef Element, uint32_t Count) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_Array;
  Node->Inner = std::move(Element);
  Node->ArrayCount = Count;
  return Node;
}

SrcTypeRef makeConst(SrcTypeRef Underlying) {
  return makeWrapper(SrcTypeKind::ST_Const, std::move(Underlying));
}

SrcTypeRef makeVolatile(SrcTypeRef Underlying) {
  return makeWrapper(SrcTypeKind::ST_Volatile, std::move(Underlying));
}

SrcTypeRef makeTypedef(std::string Name, SrcTypeRef Underlying) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_Typedef;
  Node->Name = std::move(Name);
  Node->Inner = std::move(Underlying);
  return Node;
}

SrcTypeRef makeEnum(std::string Name) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_Enum;
  Node->Name = std::move(Name);
  return Node;
}

SrcTypeRef makeForward(std::string Name, bool IsClass) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_Forward;
  Node->Name = std::move(Name);
  Node->HasMethods = IsClass;
  return Node;
}

SrcTypeRef makeNullptrType() { return makeNode(SrcTypeKind::ST_Nullptr); }

SrcTypeRef makeFuncProto(std::vector<SrcTypeRef> Params, SrcTypeRef Return) {
  auto Node = std::make_shared<SrcType>();
  Node->Kind = SrcTypeKind::ST_FuncProto;
  Node->ProtoParams = std::move(Params);
  Node->ProtoReturn = std::move(Return);
  return Node;
}

std::shared_ptr<SrcType> makeAggregate(SrcTypeKind Kind, std::string Name) {
  assert((Kind == SrcTypeKind::ST_Struct || Kind == SrcTypeKind::ST_Class ||
          Kind == SrcTypeKind::ST_Union) &&
         "not an aggregate kind");
  auto Node = std::make_shared<SrcType>();
  Node->Kind = Kind;
  Node->Name = std::move(Name);
  return Node;
}

void addField(std::shared_ptr<SrcType> &Aggregate, std::string Name,
              SrcTypeRef Type) {
  assert(Aggregate && "null aggregate");
  uint32_t Offset = 0;
  if (Aggregate->Kind != SrcTypeKind::ST_Union) {
    // Natural alignment within the running layout (computed from the raw
    // field extents, not byteSize(), which reports 1 for empty aggregates).
    Offset = Aggregate->HasMethods ? 4 : 0;
    for (const SrcField &Field : Aggregate->Fields)
      Offset = std::max(Offset, Field.ByteOffset + Field.Type->byteSize());
    uint32_t Align = std::min<uint32_t>(Type->byteSize(), 8);
    if (Align == 0)
      Align = 1;
    // Round up to a power-of-two-ish alignment.
    uint32_t Pow2 = 1;
    while (Pow2 < Align && Pow2 < 8)
      Pow2 <<= 1;
    Offset = (Offset + Pow2 - 1) & ~(Pow2 - 1);
  }
  Aggregate->Fields.push_back(SrcField{std::move(Name), std::move(Type), Offset});
}

} // namespace frontend
} // namespace snowwhite
