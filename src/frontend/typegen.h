//===- frontend/typegen.h - Per-package type environments ------------------===//
//
// Models the type populations the paper observes in 4,081 Ubuntu packages:
//
//  * Well-known library types shared by many packages (size_t, FILE,
//    basic_string<char, ...>, va_list, ...) — these end up above the 1%
//    package threshold and become the common-name vocabulary (Table 3).
//  * Project-specific aggregates, enums and typedefs with package-prefixed
//    names — plentiful, but each confined to its package, so their names are
//    dropped by the vocabulary filter (the "All Names" variant keeps them,
//    exploding |L| as in Table 4).
//
// Parameter and return types are sampled from a distribution shaped like the
// paper's Table 2: pointers to aggregates dominate, const-ness and the
// class/struct distinction split large groups, and plain 32-bit ints are the
// most common primitive.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_FRONTEND_TYPEGEN_H
#define SNOWWHITE_FRONTEND_TYPEGEN_H

#include "frontend/ast.h"
#include "support/rng.h"

#include <string>
#include <vector>

namespace snowwhite {
namespace frontend {

/// One shared library type with its per-package inclusion probability
/// (how likely any given package uses it at all).
struct WellKnownType {
  SrcTypeRef Type;
  double InclusionProbability;
  bool CxxOnly;
  /// How the codegen should fingerprint usages (see codegen.cpp).
  enum class IdiomKind {
    IK_Generic,
    IK_SizeT,
    IK_File,
    IK_String,
    IK_VaList,
    IK_TimeT,
  } Idiom = IdiomKind::IK_Generic;
};

/// The global pool of well-known types, built once per corpus (shared
/// SrcType nodes mean shared DWARF DIEs within an object file).
std::vector<WellKnownType> makeWellKnownPool();

/// A package's private types plus its slice of the well-known pool.
class TypeEnvironment {
public:
  /// Generates the package-local type population. PackagePrefix seeds the
  /// project-specific names (e.g. "gdal" -> "GdalLayer", "gdal_ctx_t").
  TypeEnvironment(Rng &R, bool IsCxx, const std::string &PackagePrefix,
                  const std::vector<WellKnownType> &Pool);

  bool isCxx() const { return IsCxx; }

  /// Samples one parameter type.
  SrcTypeRef sampleParamType(Rng &R) const;

  /// Samples one return type; returns makeVoid() for void.
  SrcTypeRef sampleReturnType(Rng &R) const;

  /// The well-known types this package actually uses (subset of the pool).
  const std::vector<WellKnownType> &usedWellKnown() const {
    return UsedWellKnown;
  }

private:
  SrcTypeRef sampleAggregatePointer(Rng &R, bool AllowConst) const;
  SrcTypeRef sampleLocalAggregate(Rng &R) const;
  SrcTypeRef samplePrimitive(Rng &R) const;

  bool IsCxx;
  std::vector<WellKnownType> UsedWellKnown;
  std::vector<SrcTypeRef> Structs;
  std::vector<SrcTypeRef> Unions;
  std::vector<SrcTypeRef> Classes; ///< Empty for C packages.
  std::vector<SrcTypeRef> Enums;
  std::vector<SrcTypeRef> Typedefs; ///< Project-specific primitive typedefs.
  std::vector<SrcTypeRef> Forwards;
};

/// Generates a function signature (name, parameters, return type) against
/// the environment. FunctionIndex disambiguates names within the package.
SrcFunction generateSignature(Rng &R, const TypeEnvironment &Env,
                              const std::string &PackagePrefix,
                              uint32_t FunctionIndex);

} // namespace frontend
} // namespace snowwhite

#endif // SNOWWHITE_FRONTEND_TYPEGEN_H
