//===- frontend/corpus.h - Build a synthetic package corpus ----------------===//
//
// Mirrors the paper's dataset construction (§5) at configurable scale:
// packages of object files, each object file a WebAssembly binary with
// .debug_info/.debug_str sections. The corpus deliberately contains exact
// duplicates (statically-linked-library effect) and near-duplicates (same
// code with different embedded constants) so the deduplication stage has
// real work to do.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_FRONTEND_CORPUS_H
#define SNOWWHITE_FRONTEND_CORPUS_H

#include "dwarf/die.h"
#include "frontend/ast.h"
#include "frontend/codegen.h"
#include "wasm/module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace frontend {

/// Corpus generation parameters.
struct CorpusSpec {
  uint64_t Seed = 42;
  uint32_t NumPackages = 100;
  uint32_t MinObjectsPerPackage = 1;
  uint32_t MaxObjectsPerPackage = 4;
  uint32_t MinFunctionsPerObject = 3;
  uint32_t MaxFunctionsPerObject = 10;
  double CxxFraction = 0.55;     ///< Probability a package is C++.
  double ExactDupRate = 0.08;    ///< Object copied verbatim from the pool.
  double NearDupRate = 0.06;     ///< Object copied with jittered constants.
  CodegenOptions Codegen;
};

/// One compiled object file: the module (with debug sections attached), its
/// serialized bytes, and the parsed debug info.
struct CompiledObject {
  std::string FileName;
  wasm::Module Mod;
  std::vector<uint8_t> Bytes;
  dwarf::DebugInfo Debug;
};

/// One synthetic package.
struct Package {
  std::string Name;
  uint32_t Id = 0;
  bool IsCxx = false;
  std::vector<CompiledObject> Objects;
};

/// The full corpus plus raw-size statistics (pre-dedup; §5 Table).
struct Corpus {
  std::vector<Package> Packages;
  uint64_t TotalObjects = 0;
  uint64_t TotalFunctions = 0;
  uint64_t TotalInstructions = 0;
  uint64_t TotalBytes = 0;
};

/// Generates the corpus. Deterministic in Spec.Seed.
Corpus buildCorpus(const CorpusSpec &Spec);

/// Compiles one object file of Functions against a fresh standard module,
/// emitting wasm bytes and DWARF. Exposed for tests and examples.
CompiledObject compileObject(const std::vector<SrcFunction> &Functions,
                             const std::string &FileName, Rng &R,
                             const CodegenOptions &Options);

} // namespace frontend
} // namespace snowwhite

#endif // SNOWWHITE_FRONTEND_CORPUS_H
