//===- frontend/ast.h - Synthetic C/C++-like source types ------------------===//
//
// The paper's dataset is built by compiling C/C++ Ubuntu packages with
// Emscripten. This repo has no Emscripten and no Ubuntu mirror, so the
// frontend substitutes a synthetic source language whose type system mirrors
// the C/C++ declarations the paper's DWARF extractor sees: primitives with
// exact widths, pointers/references, arrays, const/volatile, typedefs,
// struct/class/union/enum with fields, and function prototypes. The code
// generator (codegen.h) lowers functions over these types to WebAssembly
// with type-correlated instruction idioms, and dwarf_emit.h produces the
// matching debug info.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_FRONTEND_AST_H
#define SNOWWHITE_FRONTEND_AST_H

#include "wasm/types.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace snowwhite {
namespace frontend {

/// Source-level primitive types with unambiguous machine representations
/// (the generator never needs the C names 'long' etc. that the paper argues
/// are ambiguous).
enum class SrcPrimKind : uint8_t {
  SP_Bool,
  SP_I8,
  SP_U8,
  SP_I16,
  SP_U16,
  SP_I32,
  SP_U32,
  SP_I64,
  SP_U64,
  SP_F32,
  SP_F64,
  SP_F128,
  SP_Complex, ///< C _Complex double.
  SP_Char,    ///< "Plain" char: character data.
  SP_WChar16,
  SP_WChar32,
};

/// Constructors of the synthetic source type system.
enum class SrcTypeKind : uint8_t {
  ST_Void,
  ST_Prim,
  ST_Pointer,
  ST_Reference, ///< C++ reference; lowers like a pointer.
  ST_Array,
  ST_Const,
  ST_Volatile,
  ST_Typedef,
  ST_Struct,
  ST_Class,
  ST_Union,
  ST_Enum,
  ST_FuncProto,  ///< Function type (behind pointers).
  ST_Forward,    ///< Forward-declared aggregate (no definition).
  ST_Nullptr,    ///< decltype(nullptr)-like unspecified type.
};

struct SrcType;
using SrcTypeRef = std::shared_ptr<const SrcType>;

/// One member of an aggregate definition.
struct SrcField {
  std::string Name;
  SrcTypeRef Type;
  uint32_t ByteOffset = 0;
};

/// A source type term. Aggregates are identified nominally via Name; the
/// pointee of a pointer may refer back to the enclosing aggregate (linked
/// lists etc.), so the structure may be cyclic — exactly like DWARF.
struct SrcType {
  SrcTypeKind Kind = SrcTypeKind::ST_Void;
  SrcPrimKind Prim = SrcPrimKind::SP_I32;
  std::string Name;     ///< Typedef/aggregate/enum name ("" = anonymous).
  SrcTypeRef Inner;     ///< Pointer/Reference/Array/Const/Volatile/Typedef.
  uint32_t ArrayCount = 0;
  std::vector<SrcField> Fields; ///< Struct/Class/Union members.
  bool HasMethods = false;      ///< Classes with virtual methods.
  std::vector<SrcTypeRef> ProtoParams;
  SrcTypeRef ProtoReturn;

  /// Size in bytes under an ILP32 (wasm32) data model.
  uint32_t byteSize() const;

  /// The wasm value type a parameter/return of this type lowers to.
  /// Aggregates and arrays decay to pointers (i32). Must not be called on
  /// void.
  wasm::ValType lowerValType() const;

  /// Strips typedefs/const/volatile down to the representation-determining
  /// type.
  const SrcType &strippedForLayout() const;
};

/// Factory helpers; all return shared immutable nodes.
SrcTypeRef makeVoid();
SrcTypeRef makePrim(SrcPrimKind Kind);
SrcTypeRef makePointer(SrcTypeRef Pointee);
SrcTypeRef makeReference(SrcTypeRef Referent);
SrcTypeRef makeArray(SrcTypeRef Element, uint32_t Count);
SrcTypeRef makeConst(SrcTypeRef Underlying);
SrcTypeRef makeVolatile(SrcTypeRef Underlying);
SrcTypeRef makeTypedef(std::string Name, SrcTypeRef Underlying);
SrcTypeRef makeEnum(std::string Name);
SrcTypeRef makeForward(std::string Name, bool IsClass);
SrcTypeRef makeNullptrType();
SrcTypeRef makeFuncProto(std::vector<SrcTypeRef> Params, SrcTypeRef Return);

/// Builds a struct/class/union. Field offsets are assigned sequentially with
/// natural alignment. Structs/classes may be created empty and filled later
/// via finalizeAggregate to allow self-referential fields.
std::shared_ptr<SrcType> makeAggregate(SrcTypeKind Kind, std::string Name);
void addField(std::shared_ptr<SrcType> &Aggregate, std::string Name,
              SrcTypeRef Type);

/// Byte size of a primitive.
uint32_t primByteSize(SrcPrimKind Kind);

/// True for the signed integer primitives (used to pick _s vs _u opcodes).
bool primIsSigned(SrcPrimKind Kind);

/// A function signature plus its name, in one synthetic compilation unit.
struct SrcFunction {
  std::string Name;
  std::vector<std::pair<std::string, SrcTypeRef>> Params;
  SrcTypeRef ReturnType; ///< makeVoid() for void functions.
  bool IsExternCpp = false; ///< Part of a C++ package (affects names only).
};

} // namespace frontend
} // namespace snowwhite

#endif // SNOWWHITE_FRONTEND_AST_H
