//===- frontend/dwarf_emit.h - Emit DWARF for synthetic source types -------===//
//
// Lowers SrcType terms and SrcFunction signatures to the DWARF DIE graph a
// real compiler (clang/Emscripten with -g) would produce: base types carry
// DW_AT_encoding/byte_size/name, aggregates have member children, pointers
// reference their pointee (possibly cyclically), and subprograms carry
// DW_AT_low_pc anchoring them to their wasm code entry.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_FRONTEND_DWARF_EMIT_H
#define SNOWWHITE_FRONTEND_DWARF_EMIT_H

#include "dwarf/die.h"
#include "frontend/ast.h"

#include <map>

namespace snowwhite {
namespace frontend {

/// Emits DWARF DIEs for source types and functions into one DebugInfo
/// (one per synthetic object file). Type DIEs are cached per source node so
/// shared and recursive types produce a shared, possibly cyclic graph.
class DwarfEmitter {
public:
  explicit DwarfEmitter(dwarf::DebugInfo &Info) : Info(Info) {
    Info.setString(Info.root(), dwarf::Attr::Producer,
                   "snowwhite synthetic frontend");
  }

  /// Emits (or returns the cached) DIE for T. Void yields InvalidDieRef
  /// (absent DW_AT_type, as in real DWARF).
  dwarf::DieRef emitType(const SrcTypeRef &T);

  /// Emits a DW_TAG_subprogram with formal parameters, attached to the
  /// compile unit. LowPc must be the function's code offset in the binary.
  dwarf::DieRef emitFunction(const SrcFunction &Func, uint64_t LowPc);

private:
  dwarf::DebugInfo &Info;
  /// Keyed by the owning shared_ptr (not the raw pointer) so cached source
  /// nodes stay alive — otherwise a freed node's address could be reused by
  /// a different type and alias its cache entry.
  std::map<SrcTypeRef, dwarf::DieRef> Cache;
};

} // namespace frontend
} // namespace snowwhite

#endif // SNOWWHITE_FRONTEND_DWARF_EMIT_H
