//===- typelang/vocab.h - Common type-name vocabulary ----------------------===//
//
// The L_SW language keeps only *common* type names: names that appear in at
// least 1% of all compiled packages (paper §3.6). Rare/project-specific
// names are dropped, together with names starting with an underscore (likely
// internal) and names that merely restate the primitive representation
// (uint32_t etc.). This file builds that vocabulary from per-package name
// occurrences and answers Table 3's "most common names" query.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_TYPELANG_VOCAB_H
#define SNOWWHITE_TYPELANG_VOCAB_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace snowwhite {
namespace typelang {

/// True if Name should never become a 'name' constructor, regardless of
/// frequency: underscore-prefixed (internal) or restating a primitive
/// (e.g. "uint32_t", "int8_t").
bool isFilteredName(const std::string &Name);

/// Frequency-based name vocabulary built over a corpus of packages.
class NameVocabulary {
public:
  /// Records that Name occurred (in a typedef or named datatype definition)
  /// inside package PackageId. Filtered names are ignored.
  void addOccurrence(const std::string &Name, uint32_t PackageId);

  /// Folds another (unfinalized) vocabulary's occurrences into this one.
  /// Set unions and integer adds are exactly associative, so merging
  /// shard-local vocabularies yields the same vocabulary as sequential
  /// addOccurrence calls, for any sharding.
  void merge(const NameVocabulary &Other);

  /// Fixes the vocabulary: keep names appearing in at least
  /// ceil(MinPackageFraction * TotalPackages) distinct packages (at least 1).
  void finalize(uint32_t TotalPackages, double MinPackageFraction = 0.01);

  /// True if Name survived finalization. Must be called after finalize().
  bool contains(const std::string &Name) const;

  /// Number of names kept.
  size_t size() const { return Common.size(); }

  /// All kept names (sorted).
  std::vector<std::string> names() const;

  /// One Table-3 row: a name with its sample count and the fraction of
  /// packages it appears in.
  struct NameStat {
    std::string Name;
    uint64_t SampleCount = 0;
    double PackageFraction = 0.0;
  };

  /// Kept names ordered by descending package fraction (Table 3). Sample
  /// counts reflect addOccurrence calls (one per extracted sample).
  std::vector<NameStat> mostCommon(size_t Limit) const;

  bool isFinalized() const { return Finalized; }

private:
  std::map<std::string, std::set<uint32_t>> PackagesByName;
  std::map<std::string, uint64_t> SamplesByName;
  std::set<std::string> Common;
  uint32_t TotalPackages = 0;
  bool Finalized = false;
};

} // namespace typelang
} // namespace snowwhite

#endif // SNOWWHITE_TYPELANG_VOCAB_H
