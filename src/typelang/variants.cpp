#include "typelang/variants.h"

#include <cassert>

namespace snowwhite {
namespace typelang {

const char *typeLanguageName(TypeLanguageKind Kind) {
  switch (Kind) {
  case TypeLanguageKind::TL_Sw:
    return "Lsw";
  case TypeLanguageKind::TL_SwAllNames:
    return "Lsw, All Names";
  case TypeLanguageKind::TL_SwSimplified:
    return "Lsw, Simplified";
  case TypeLanguageKind::TL_Eklavya:
    return "L_Eklavya";
  }
  assert(false && "unknown language");
  return "?";
}

Type simplifyType(const Type &T) {
  switch (T.kind()) {
  case TypeKind::TK_Name:
  case TypeKind::TK_Const:
    // Flattened away entirely.
    return simplifyType(T.inner());
  case TypeKind::TK_Class:
    return Type::makeStruct();
  case TypeKind::TK_Pointer:
    return Type::makePointer(simplifyType(T.inner()));
  case TypeKind::TK_Array:
    return Type::makeArray(simplifyType(T.inner()));
  default:
    return T;
  }
}

std::string eklavyaLabel(const Type &T) {
  switch (T.kind()) {
  case TypeKind::TK_Pointer:
  case TypeKind::TK_Array:
    // Eklavya does not distinguish arrays from pointers and tracks no
    // pointee type.
    return "pointer";
  case TypeKind::TK_Const:
  case TypeKind::TK_Name:
    return eklavyaLabel(T.inner());
  case TypeKind::TK_Struct:
  case TypeKind::TK_Class:
    return "struct";
  case TypeKind::TK_Union:
    return "union";
  case TypeKind::TK_Enum:
    return "enum";
  case TypeKind::TK_Function:
    return "pointer";
  case TypeKind::TK_Unknown:
    return "int";
  case TypeKind::TK_Primitive:
    switch (T.primKind()) {
    case PrimKind::PK_Bool:
    case PrimKind::PK_Int:
    case PrimKind::PK_Uint:
      // Booleans are not distinguished from integers in Eklavya.
      return "int";
    case PrimKind::PK_Float:
    case PrimKind::PK_Complex:
      return "float";
    case PrimKind::PK_CChar:
    case PrimKind::PK_WChar:
      return "char";
    }
  }
  assert(false && "unhandled type kind");
  return "int";
}

namespace {

/// Rebuilds T without 'name' constructors that are filtered or missing from
/// Vocabulary (when given).
Type dropRejectedNames(const Type &T, const NameVocabulary *Vocabulary) {
  switch (T.kind()) {
  case TypeKind::TK_Name: {
    Type Inner = dropRejectedNames(T.inner(), Vocabulary);
    if (isFilteredName(T.name()))
      return Inner;
    if (Vocabulary && !Vocabulary->contains(T.name()))
      return Inner;
    return Type::makeNamed(T.name(), std::move(Inner));
  }
  case TypeKind::TK_Pointer:
    return Type::makePointer(dropRejectedNames(T.inner(), Vocabulary));
  case TypeKind::TK_Array:
    return Type::makeArray(dropRejectedNames(T.inner(), Vocabulary));
  case TypeKind::TK_Const:
    return Type::makeConst(dropRejectedNames(T.inner(), Vocabulary));
  default:
    return T;
  }
}

/// Keeps only the outermost 'name' constructor.
Type keepOutermostName(const Type &T, bool SeenName) {
  switch (T.kind()) {
  case TypeKind::TK_Name: {
    if (SeenName)
      return keepOutermostName(T.inner(), true);
    return Type::makeNamed(T.name(), keepOutermostName(T.inner(), true));
  }
  case TypeKind::TK_Pointer:
    return Type::makePointer(keepOutermostName(T.inner(), SeenName));
  case TypeKind::TK_Array:
    return Type::makeArray(keepOutermostName(T.inner(), SeenName));
  case TypeKind::TK_Const:
    return Type::makeConst(keepOutermostName(T.inner(), SeenName));
  default:
    return T;
  }
}

} // namespace

Type filterTypeNames(const Type &T, const NameVocabulary *Vocabulary) {
  return keepOutermostName(dropRejectedNames(T, Vocabulary), false);
}

Type dropTypeNames(const Type &T) {
  switch (T.kind()) {
  case TypeKind::TK_Name:
    return dropTypeNames(T.inner());
  case TypeKind::TK_Pointer:
    return Type::makePointer(dropTypeNames(T.inner()));
  case TypeKind::TK_Array:
    return Type::makeArray(dropTypeNames(T.inner()));
  case TypeKind::TK_Const:
    return Type::makeConst(dropTypeNames(T.inner()));
  default:
    return T;
  }
}

wasm::ValType lowLevelTypeOf(const Type &T) {
  switch (T.kind()) {
  case TypeKind::TK_Const:
  case TypeKind::TK_Name:
    return lowLevelTypeOf(T.inner());
  case TypeKind::TK_Primitive:
    switch (T.primKind()) {
    case PrimKind::PK_Int:
    case PrimKind::PK_Uint:
      return T.primBits() == 64 ? wasm::ValType::I64 : wasm::ValType::I32;
    case PrimKind::PK_Float:
      if (T.primBits() == 32)
        return wasm::ValType::F32;
      if (T.primBits() == 64)
        return wasm::ValType::F64;
      return wasm::ValType::I32; // float 128: passed indirectly.
    case PrimKind::PK_Complex:
      return wasm::ValType::I32; // Passed indirectly.
    case PrimKind::PK_Bool:
    case PrimKind::PK_CChar:
    case PrimKind::PK_WChar:
      return wasm::ValType::I32;
    }
    return wasm::ValType::I32;
  default:
    // Pointers, arrays, aggregates, enums, functions, unknown.
    return wasm::ValType::I32;
  }
}

std::vector<std::string>
lowerTypeToLanguage(const Type &Rich, TypeLanguageKind Kind,
                    const NameVocabulary *Vocabulary) {
  switch (Kind) {
  case TypeLanguageKind::TL_Sw:
    return filterTypeNames(Rich, Vocabulary).tokens();
  case TypeLanguageKind::TL_SwAllNames:
    return filterTypeNames(Rich, nullptr).tokens();
  case TypeLanguageKind::TL_SwSimplified:
    return simplifyType(dropTypeNames(Rich)).tokens();
  case TypeLanguageKind::TL_Eklavya:
    return {eklavyaLabel(Rich)};
  }
  assert(false && "unknown language");
  return {};
}

std::vector<std::string> typeTokensInLanguage(const Type &T,
                                              TypeLanguageKind Kind) {
  switch (Kind) {
  case TypeLanguageKind::TL_Sw:
  case TypeLanguageKind::TL_SwAllNames:
    // Name filtering for these two variants happens at DWARF conversion
    // time (the vocabulary is a conversion input).
    return T.tokens();
  case TypeLanguageKind::TL_SwSimplified:
    return simplifyType(T).tokens();
  case TypeLanguageKind::TL_Eklavya:
    return {eklavyaLabel(T)};
  }
  assert(false && "unknown language");
  return {};
}

std::vector<LanguageFeatureRow> languageFeatureMatrix() {
  // Columns follow Table 1 of the paper. Prim size: 0 = unsupported,
  // 1 = exact bit width, 2 = via (ambiguous) C type names.
  return {
      {"Eklavya", "7", "Fixed set", true, false, false, 0, true, false, true,
       true, false, false, "x", "Top-1", false, false, "-"},
      {"Debin", "17", "Fixed set", true, true, false, 2, true, false, true,
       true, true, false, "x", "Top-1", false, false, "-"},
      {"TypeMiner", "11", "Fixed set", true, true, true, 0, false, false,
       false, false, true, false, "struct,char,func", "Top-1", false, false,
       "-"},
      {"StateFormer", "35", "Fixed set", true, false, true, 2, false, true,
       true, true, true, false, "Single level", "Top-1", false, false, "-"},
      {"SNOWWHITE", "inf", "Sequence", true, true, true, 1, true, true, true,
       true, true, true, "Recursive", "Top-k", false, false, "class"},
      {"Full DWARF", "inf", "Full graph", true, true, true, 1, true, true,
       true, true, true, true, "Recursive", "-", true, true, "all"},
  };
}

} // namespace typelang
} // namespace snowwhite
