//===- typelang/variants.h - Type language variants (§3.7) -----------------===//
//
// To evaluate the effect of type-language expressiveness, the paper defines
// variants of L_SW: "All Names" (no frequency filtering of names),
// "Simplified" (no const, no class/struct distinction, no names — close to
// prior work like StateFormer), and the 7-label L_Eklavya baseline language.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_TYPELANG_VARIANTS_H
#define SNOWWHITE_TYPELANG_VARIANTS_H

#include "typelang/type.h"
#include "typelang/vocab.h"
#include "wasm/types.h"

#include <string>
#include <vector>

namespace snowwhite {
namespace typelang {

/// The type languages compared in Tables 4 and 5.
enum class TypeLanguageKind : uint8_t {
  TL_Sw,           ///< L_SW: common names, const, class/struct distinction.
  TL_SwAllNames,   ///< L_SW with every (non-filtered) name kept.
  TL_SwSimplified, ///< L_SW without name/const/class constructors.
  TL_Eklavya,      ///< Fixed 7-label set of Eklavya.
};

/// Human-readable language name, e.g. "Lsw" or "Lsw, Simplified".
const char *typeLanguageName(TypeLanguageKind Kind);

/// Applies the "Simplified" lowering: removes 'name' and 'const'
/// constructors and maps 'class' to 'struct'.
Type simplifyType(const Type &T);

/// Name filtering (§3.6) on an already-converted type that may carry nested
/// names: drops names that are filtered (underscore/primitive restatements)
/// or absent from Vocabulary (nullptr = keep all non-filtered names), then
/// keeps only the outermost surviving 'name' constructor.
Type filterTypeNames(const Type &T, const NameVocabulary *Vocabulary);

/// Removes every 'name' constructor.
Type dropTypeNames(const Type &T);

/// The wasm value type a value of T occupies (wasm32 C ABI): pointers,
/// arrays, aggregates, enums, bools, chars and sub-64-bit integers are i32;
/// 64-bit integers are i64; float 32 is f32; float 64 is f64; float 128 and
/// complex are passed indirectly (i32).
wasm::ValType lowLevelTypeOf(const Type &T);

/// Lowers a rich type (nested names kept, as produced with
/// ConvertOptions::KeepNestedNames) into the given language. For TL_Sw pass
/// the corpus vocabulary; it is ignored for the other variants.
std::vector<std::string>
lowerTypeToLanguage(const Type &Rich, TypeLanguageKind Kind,
                    const NameVocabulary *Vocabulary);

/// Maps a type to its single L_Eklavya label, one of: "int", "char",
/// "float", "pointer", "enum", "struct", "union".
std::string eklavyaLabel(const Type &T);

/// Token sequence of T in the given language. For the L_SW family this is
/// the (possibly lowered) prefix sequence; for L_Eklavya it is a single
/// label token.
std::vector<std::string> typeTokensInLanguage(const Type &T,
                                              TypeLanguageKind Kind);

/// One row of the paper's Table 1 feature matrix.
struct LanguageFeatureRow {
  const char *Name;
  const char *NumTypes; ///< "7", "17", ... or the infinity symbol.
  const char *Structure;
  bool IntCharDistinct;
  bool Bool;
  bool IntSign;
  int PrimSize; ///< 0 = no, 1 = yes (exact), 2 = via C type names "(√)".
  bool Enum;
  bool Array;
  bool Struct;
  bool Union;
  bool FuncPtr;
  bool Const;
  const char *PointerPointee;
  const char *PredictionOutput; ///< e.g. "Top-k".
  bool Fields;
  bool OptimizationHints;
  const char *LanguageSpecific;
};

/// Static data behind Table 1 (prior work rows reported from the respective
/// papers; SNOWWHITE and full-DWARF rows reflect this implementation).
std::vector<LanguageFeatureRow> languageFeatureMatrix();

} // namespace typelang
} // namespace snowwhite

#endif // SNOWWHITE_TYPELANG_VARIANTS_H
