#include "typelang/vocab.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace snowwhite {
namespace typelang {

bool isFilteredName(const std::string &Name) {
  if (Name.empty())
    return true;
  if (Name[0] == '_')
    return true;
  // Names that restate the primitive representation carry no information
  // beyond what the 'primitive' constructor already encodes.
  static const char *PrimitiveNames[] = {
      "int8_t",  "int16_t",  "int32_t",  "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "char8_t", "bool",    "float",   "double",
  };
  for (const char *Primitive : PrimitiveNames)
    if (Name == Primitive)
      return true;
  return false;
}

void NameVocabulary::addOccurrence(const std::string &Name,
                                   uint32_t PackageId) {
  assert(!Finalized && "addOccurrence after finalize");
  if (isFilteredName(Name))
    return;
  PackagesByName[Name].insert(PackageId);
  ++SamplesByName[Name];
}

void NameVocabulary::merge(const NameVocabulary &Other) {
  assert(!Finalized && !Other.Finalized && "merge after finalize");
  for (const auto &[Name, Packages] : Other.PackagesByName)
    PackagesByName[Name].insert(Packages.begin(), Packages.end());
  for (const auto &[Name, Count] : Other.SamplesByName)
    SamplesByName[Name] += Count;
}

void NameVocabulary::finalize(uint32_t TotalPackagesIn,
                              double MinPackageFraction) {
  assert(!Finalized && "finalize called twice");
  TotalPackages = TotalPackagesIn;
  uint32_t Threshold = static_cast<uint32_t>(
      std::ceil(MinPackageFraction * static_cast<double>(TotalPackages)));
  if (Threshold < 1)
    Threshold = 1;
  for (const auto &[Name, Packages] : PackagesByName)
    if (Packages.size() >= Threshold)
      Common.insert(Name);
  Finalized = true;
}

bool NameVocabulary::contains(const std::string &Name) const {
  assert(Finalized && "contains before finalize");
  return Common.count(Name) != 0;
}

std::vector<std::string> NameVocabulary::names() const {
  assert(Finalized && "names before finalize");
  return std::vector<std::string>(Common.begin(), Common.end());
}

std::vector<NameVocabulary::NameStat>
NameVocabulary::mostCommon(size_t Limit) const {
  assert(Finalized && "mostCommon before finalize");
  std::vector<NameStat> Stats;
  for (const std::string &Name : Common) {
    NameStat Stat;
    Stat.Name = Name;
    auto SampleIt = SamplesByName.find(Name);
    Stat.SampleCount = SampleIt == SamplesByName.end() ? 0 : SampleIt->second;
    auto PackageIt = PackagesByName.find(Name);
    size_t InPackages =
        PackageIt == PackagesByName.end() ? 0 : PackageIt->second.size();
    Stat.PackageFraction =
        TotalPackages == 0
            ? 0.0
            : static_cast<double>(InPackages) / TotalPackages;
    Stats.push_back(std::move(Stat));
  }
  std::stable_sort(Stats.begin(), Stats.end(),
                   [](const NameStat &A, const NameStat &B) {
                     if (A.PackageFraction != B.PackageFraction)
                       return A.PackageFraction > B.PackageFraction;
                     return A.Name < B.Name;
                   });
  if (Stats.size() > Limit)
    Stats.resize(Limit);
  return Stats;
}

} // namespace typelang
} // namespace snowwhite
