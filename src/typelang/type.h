//===- typelang/type.h - The SNOWWHITE high-level type language ------------===//
//
// The paper's core contribution: an expressive type language for binary type
// recovery (Fig. 3). Types are recursive and linearize to prefix token
// sequences, which is what turns type prediction into sequence prediction:
//
//   type      ::= 'primitive' primitive
//               | 'pointer' type | 'array' type
//               | 'const' type
//               | 'name' <string> type
//               | 'struct' | 'class' | 'union' | 'enum'
//               | 'function' | 'unknown'
//   primitive ::= 'bool' | 'int' bits | 'uint' bits | 'float' bits
//               | 'complex' | 'cchar' | 'wchar' bits
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_TYPELANG_TYPE_H
#define SNOWWHITE_TYPELANG_TYPE_H

#include "support/result.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace snowwhite {
namespace typelang {

/// Discriminates the Type constructors of Fig. 3.
enum class TypeKind : uint8_t {
  TK_Primitive,
  TK_Pointer,
  TK_Array,
  TK_Const,
  TK_Name,
  TK_Struct,
  TK_Class,
  TK_Union,
  TK_Enum,
  TK_Function,
  TK_Unknown,
};

/// Discriminates the primitive types. Sizes are tracked exactly (in bits) to
/// avoid the ambiguous C names the paper argues against (ILP32 vs LP64).
enum class PrimKind : uint8_t {
  PK_Bool,
  PK_Int,     ///< Signed integer; Bits in {8, 16, 32, 64}.
  PK_Uint,    ///< Unsigned integer; Bits in {8, 16, 32, 64}.
  PK_Float,   ///< IEEE float; Bits in {32, 64, 128}.
  PK_Complex, ///< C built-in _Complex.
  PK_CChar,   ///< "Plain" C char: character data, not arithmetic.
  PK_WChar,   ///< Wide/unicode char; Bits in {16, 32}.
};

/// Whether this primitive kind carries a bit width in the type language.
bool primKindHasBits(PrimKind Kind);

/// Token spelling of a primitive kind ("bool", "int", ...).
const char *primKindName(PrimKind Kind);

/// An immutable, value-semantic type term. Nested types (pointer, array,
/// const, name) share their pointee structurally via shared_ptr, so copies
/// are cheap; Type values are never mutated after construction.
class Type {
public:
  /// Default-constructs the uninformative 'unknown' type.
  Type() : Kind(TypeKind::TK_Unknown) {}

  static Type makeBool() { return makePrim(PrimKind::PK_Bool, 0); }
  static Type makeInt(unsigned Bits) { return makePrim(PrimKind::PK_Int, Bits); }
  static Type makeUint(unsigned Bits) {
    return makePrim(PrimKind::PK_Uint, Bits);
  }
  static Type makeFloat(unsigned Bits) {
    return makePrim(PrimKind::PK_Float, Bits);
  }
  static Type makeComplex() { return makePrim(PrimKind::PK_Complex, 0); }
  static Type makeCChar() { return makePrim(PrimKind::PK_CChar, 0); }
  static Type makeWChar(unsigned Bits) {
    return makePrim(PrimKind::PK_WChar, Bits);
  }
  static Type makePrim(PrimKind Kind, unsigned Bits);

  static Type makePointer(Type Pointee);
  static Type makeArray(Type Element);
  static Type makeConst(Type Underlying);
  static Type makeNamed(std::string Name, Type Underlying);
  static Type makeStruct() { return Type(TypeKind::TK_Struct); }
  static Type makeClass() { return Type(TypeKind::TK_Class); }
  static Type makeUnion() { return Type(TypeKind::TK_Union); }
  static Type makeEnum() { return Type(TypeKind::TK_Enum); }
  static Type makeFunction() { return Type(TypeKind::TK_Function); }
  static Type makeUnknown() { return Type(TypeKind::TK_Unknown); }

  TypeKind kind() const { return Kind; }
  bool isPrimitive() const { return Kind == TypeKind::TK_Primitive; }

  /// True for constructors that wrap an inner type.
  bool hasInner() const {
    return Kind == TypeKind::TK_Pointer || Kind == TypeKind::TK_Array ||
           Kind == TypeKind::TK_Const || Kind == TypeKind::TK_Name;
  }

  /// The wrapped type; only valid when hasInner().
  const Type &inner() const {
    assert(hasInner() && Inner && "no inner type");
    return *Inner;
  }

  PrimKind primKind() const {
    assert(isPrimitive() && "not a primitive");
    return Prim;
  }
  unsigned primBits() const {
    assert(isPrimitive() && "not a primitive");
    return Bits;
  }

  /// The literal of a 'name' constructor; only valid for TK_Name.
  const std::string &name() const {
    assert(Kind == TypeKind::TK_Name && "not a named type");
    return NameStr;
  }

  /// Linearizes to the prefix token sequence, e.g.
  /// {"pointer", "const", "primitive", "cchar"}. Name literals are quoted
  /// tokens: {"name", "\"size_t\"", "primitive", "uint", "32"}.
  std::vector<std::string> tokens() const;

  /// Tokens joined with spaces: the canonical display string.
  std::string toString() const;

  /// Number of nested type constructors: 0 for leaves, 1 for 'pointer
  /// primitive float 64', etc. (paper §6.2 "recursion depth").
  unsigned nestingDepth() const;

  /// Structural equality.
  bool operator==(const Type &Other) const;
  bool operator!=(const Type &Other) const { return !(*this == Other); }

private:
  explicit Type(TypeKind K) : Kind(K) {}

  TypeKind Kind;
  PrimKind Prim = PrimKind::PK_Int;
  unsigned Bits = 0;
  std::string NameStr;
  std::shared_ptr<const Type> Inner;
};

/// Parses a prefix token sequence back into a Type. The grammar is prefix-
/// unambiguous, so this is a single-pass recursive descent. Fails on
/// unknown tokens, missing operands, or trailing tokens.
Result<Type> parseType(const std::vector<std::string> &Tokens);

/// Convenience: parse from a space-separated string.
Result<Type> parseType(const std::string &Text);

/// All keyword tokens of the type language (excluding name literals and bit
/// widths); used to seed model vocabularies.
std::vector<std::string> typeLanguageKeywords();

} // namespace typelang
} // namespace snowwhite

#endif // SNOWWHITE_TYPELANG_TYPE_H
