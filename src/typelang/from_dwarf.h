//===- typelang/from_dwarf.h - DWARF type graph -> type language -----------===//
//
// Produces a type sequence in the high-level language from the DWARF type
// graph in a binary (paper §3.1): recursively traverse the graph, pattern
// match on the type constructor (e.g. DW_TAG_pointer_type) and convert it to
// a constructor of Fig. 3 or remove it (volatile/restrict). Cycles are
// broken to prevent infinite sequences. Names are collapsed per §3.6:
// typedefs and named datatype definitions both map to a single 'name'
// constructor, only the outermost name is kept, and names are filtered
// against a common-name vocabulary.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_TYPELANG_FROM_DWARF_H
#define SNOWWHITE_TYPELANG_FROM_DWARF_H

#include "dwarf/die.h"
#include "typelang/type.h"
#include "typelang/vocab.h"

namespace snowwhite {
namespace typelang {

/// Tuning knobs for the conversion. The defaults produce the full L_SW
/// language; the variant lowerings of §3.7 are applied afterwards by
/// lowerToVariant (variants.h).
struct ConvertOptions {
  /// Map typedef / named-datatype names to 'name' constructors. When false,
  /// names are dropped entirely.
  bool KeepNames = true;

  /// When non-null, only names in this vocabulary are kept ('L_SW'); when
  /// null, all non-filtered names are kept ('L_SW All Names').
  const NameVocabulary *Vocabulary = nullptr;

  /// Keep *nested* names (skip the outermost-name selection and all name
  /// filtering). Used by the dataset pipeline to produce a "rich" type that
  /// can later be lowered to any language variant via lowerTypeToLanguage.
  bool KeepNestedNames = false;
};

/// Converts the DWARF type DIE TypeDie into a Type of the language.
/// InvalidDieRef converts to 'unknown' (e.g. void behind a pointer).
Type typeFromDwarf(const dwarf::DebugInfo &Info, dwarf::DieRef TypeDie,
                   const ConvertOptions &Options = {});

/// Walks a full DWARF graph and records every name a 'name' constructor
/// would use into Vocabulary (one occurrence per converted type sample),
/// attributing them to PackageId. Used to build the corpus-wide vocabulary
/// before the real conversion runs.
void collectTypeNames(const dwarf::DebugInfo &Info, dwarf::DieRef TypeDie,
                      uint32_t PackageId, NameVocabulary &Vocabulary);

} // namespace typelang
} // namespace snowwhite

#endif // SNOWWHITE_TYPELANG_FROM_DWARF_H
