#include "typelang/from_dwarf.h"

#include "typelang/variants.h"

#include <set>

namespace snowwhite {
namespace typelang {

using dwarf::Attr;
using dwarf::DebugInfo;
using dwarf::DieRef;
using dwarf::Encoding;
using dwarf::InvalidDieRef;
using dwarf::Tag;

namespace {

/// Converts a DW_TAG_base_type DIE using its encoding, byte size, and name
/// (paper §3.2: exact, language-independent primitive representation).
Type convertBaseType(const DebugInfo &Info, DieRef D) {
  uint64_t EncodingValue =
      Info.getUint(D, Attr::Encoding).value_or(uint64_t(Encoding::Signed));
  uint64_t ByteSize = Info.getUint(D, Attr::ByteSize).value_or(4);
  std::string Name = Info.getString(D, Attr::Name).value_or("");
  unsigned Bits = static_cast<unsigned>(ByteSize * 8);

  auto ClampIntBits = [](unsigned B) -> unsigned {
    if (B <= 8)
      return 8;
    if (B <= 16)
      return 16;
    if (B <= 32)
      return 32;
    return 64;
  };

  switch (static_cast<Encoding>(EncodingValue)) {
  case Encoding::Boolean:
    return Type::makeBool();
  case Encoding::ComplexFloat:
    return Type::makeComplex();
  case Encoding::Float:
    if (Bits <= 32)
      return Type::makeFloat(32);
    if (Bits <= 64)
      return Type::makeFloat(64);
    return Type::makeFloat(128);
  case Encoding::Signed:
    return Type::makeInt(ClampIntBits(Bits));
  case Encoding::Unsigned:
  case Encoding::Address:
    return Type::makeUint(ClampIntBits(Bits));
  case Encoding::SignedChar:
    // "Plain" char is used only for character data; signed char is an int.
    return Name == "char" ? Type::makeCChar() : Type::makeInt(8);
  case Encoding::UnsignedChar:
    return Name == "char" ? Type::makeCChar() : Type::makeUint(8);
  case Encoding::Utf:
    return Type::makeWChar(Bits <= 16 ? 16 : 32);
  }
  return Type::makeInt(32);
}

/// Wraps Base in a 'name' constructor if the DIE is named.
Type wrapName(const DebugInfo &Info, DieRef D, Type Base) {
  std::optional<std::string> Name = Info.getString(D, Attr::Name);
  if (!Name || Name->empty())
    return Base;
  return Type::makeNamed(*Name, std::move(Base));
}

/// Core recursive conversion. Produces a type with *all* names attached;
/// filtering and outermost-name selection run as separate passes below.
/// Visited breaks reference cycles in the DWARF graph (paper §3.1).
Type convertImpl(const DebugInfo &Info, DieRef D, std::set<DieRef> &Visited,
                 unsigned Depth) {
  if (D == InvalidDieRef)
    return Type::makeUnknown();
  // Cycle or pathological nesting: emit the uninformative type rather than
  // an infinite sequence.
  if (Depth > 32 || !Visited.insert(D).second)
    return Type::makeUnknown();

  Type Converted = [&] {
    switch (Info.tag(D)) {
    case Tag::BaseType:
      return convertBaseType(Info, D);
    case Tag::PointerType:
    case Tag::ReferenceType:
      // C++ references are mapped to pointers (§3.4): less instructive and
      // harder to recover than the const/class distinctions we do keep.
      return Type::makePointer(
          convertImpl(Info, Info.typeOf(D), Visited, Depth + 1));
    case Tag::ArrayType:
      return Type::makeArray(
          convertImpl(Info, Info.typeOf(D), Visited, Depth + 1));
    case Tag::ConstType:
      return Type::makeConst(
          convertImpl(Info, Info.typeOf(D), Visited, Depth + 1));
    case Tag::VolatileType:
    case Tag::RestrictType:
      // Optimization hints; removed when traversing the input type (§3.4).
      return convertImpl(Info, Info.typeOf(D), Visited, Depth + 1);
    case Tag::Typedef: {
      Type Underlying = convertImpl(Info, Info.typeOf(D), Visited, Depth + 1);
      return wrapName(Info, D, std::move(Underlying));
    }
    case Tag::StructureType:
      // Forward declarations carry no usable definition: the element type is
      // unknown (§3.5).
      if (Info.getFlag(D, Attr::Declaration))
        return Type::makeUnknown();
      return wrapName(Info, D, Type::makeStruct());
    case Tag::ClassType:
      if (Info.getFlag(D, Attr::Declaration))
        return Type::makeUnknown();
      return wrapName(Info, D, Type::makeClass());
    case Tag::UnionType:
      if (Info.getFlag(D, Attr::Declaration))
        return Type::makeUnknown();
      return wrapName(Info, D, Type::makeUnion());
    case Tag::EnumerationType:
      return wrapName(Info, D, Type::makeEnum());
    case Tag::SubroutineType:
      return Type::makeFunction();
    case Tag::UnspecifiedType:
      // E.g. decltype(nullptr) (§3.5).
      return Type::makeUnknown();
    default:
      return Type::makeUnknown();
    }
  }();

  Visited.erase(D);
  return Converted;
}

} // namespace

Type typeFromDwarf(const DebugInfo &Info, DieRef TypeDie,
                   const ConvertOptions &Options) {
  std::set<DieRef> Visited;
  Type Raw = convertImpl(Info, TypeDie, Visited, 0);
  if (Options.KeepNestedNames)
    return Raw;
  if (!Options.KeepNames)
    return dropTypeNames(Raw);
  return filterTypeNames(Raw, Options.Vocabulary);
}

void collectTypeNames(const dwarf::DebugInfo &Info, dwarf::DieRef TypeDie,
                      uint32_t PackageId, NameVocabulary &Vocabulary) {
  // Convert with every name attached, then record the name that would be
  // kept (the outermost surviving one) — matching what an L_SW sample would
  // actually contain.
  ConvertOptions AllNames;
  Type Converted = typeFromDwarf(Info, TypeDie, AllNames);
  const Type *Current = &Converted;
  while (true) {
    if (Current->kind() == TypeKind::TK_Name) {
      Vocabulary.addOccurrence(Current->name(), PackageId);
      return;
    }
    if (!Current->hasInner())
      return;
    Current = &Current->inner();
  }
}

} // namespace typelang
} // namespace snowwhite
