#include "typelang/fields.h"

#include "typelang/from_dwarf.h"

namespace snowwhite {
namespace typelang {

using dwarf::Attr;
using dwarf::DebugInfo;
using dwarf::DieRef;
using dwarf::InvalidDieRef;
using dwarf::Tag;

std::string shapeToken(const Type &T) {
  switch (T.kind()) {
  case TypeKind::TK_Pointer:
    return "ptr";
  case TypeKind::TK_Array:
    return "arr";
  case TypeKind::TK_Const:
  case TypeKind::TK_Name:
    return shapeToken(T.inner());
  case TypeKind::TK_Struct:
  case TypeKind::TK_Class:
  case TypeKind::TK_Union:
    return "agg";
  case TypeKind::TK_Enum:
    return "enum";
  case TypeKind::TK_Function:
    return "fn";
  case TypeKind::TK_Unknown:
    return "unk";
  case TypeKind::TK_Primitive:
    switch (T.primKind()) {
    case PrimKind::PK_Bool:
      return "bool";
    case PrimKind::PK_Int:
      return "i" + std::to_string(T.primBits());
    case PrimKind::PK_Uint:
      return "u" + std::to_string(T.primBits());
    case PrimKind::PK_Float:
      return "f" + std::to_string(T.primBits());
    case PrimKind::PK_Complex:
      return "complex";
    case PrimKind::PK_CChar:
      return "cchar";
    case PrimKind::PK_WChar:
      return "wchar";
    }
  }
  return "unk";
}

namespace {

/// Strips typedef/const/volatile DIEs (not pointers).
DieRef stripQualifiers(const DebugInfo &Info, DieRef D) {
  unsigned Fuel = 32;
  while (D != InvalidDieRef && Fuel-- > 0) {
    switch (Info.tag(D)) {
    case Tag::Typedef:
    case Tag::ConstType:
    case Tag::VolatileType:
    case Tag::RestrictType:
      D = Info.typeOf(D);
      continue;
    default:
      return D;
    }
  }
  return D;
}

} // namespace

std::vector<std::string> fieldShapeTokens(const DebugInfo &Info,
                                          DieRef TypeDie,
                                          unsigned MaxFields) {
  DieRef D = stripQualifiers(Info, TypeDie);
  if (D == InvalidDieRef)
    return {};
  // Exactly one pointer/reference level, as in "a parameter pointing at an
  // aggregate".
  if (Info.tag(D) != Tag::PointerType && Info.tag(D) != Tag::ReferenceType)
    return {};
  D = stripQualifiers(Info, Info.typeOf(D));
  if (D == InvalidDieRef)
    return {};
  Tag AggregateTag = Info.tag(D);
  if (AggregateTag != Tag::StructureType && AggregateTag != Tag::ClassType &&
      AggregateTag != Tag::UnionType)
    return {};
  if (Info.getFlag(D, Attr::Declaration))
    return {}; // Forward declaration: no fields known.

  std::vector<std::string> Tokens;
  ConvertOptions Options;
  Options.KeepNames = false;
  for (DieRef Child : Info.children(D)) {
    if (Info.tag(Child) != Tag::Member)
      continue;
    Type FieldType = typeFromDwarf(Info, Info.typeOf(Child), Options);
    Tokens.push_back(shapeToken(FieldType));
    if (Tokens.size() >= MaxFields)
      break;
  }
  return Tokens;
}

} // namespace typelang
} // namespace snowwhite
