#include "typelang/type.h"

#include "support/str.h"

#include <cctype>

namespace snowwhite {
namespace typelang {

bool primKindHasBits(PrimKind Kind) {
  switch (Kind) {
  case PrimKind::PK_Int:
  case PrimKind::PK_Uint:
  case PrimKind::PK_Float:
  case PrimKind::PK_WChar:
    return true;
  case PrimKind::PK_Bool:
  case PrimKind::PK_Complex:
  case PrimKind::PK_CChar:
    return false;
  }
  assert(false && "unknown PrimKind");
  return false;
}

const char *primKindName(PrimKind Kind) {
  switch (Kind) {
  case PrimKind::PK_Bool:
    return "bool";
  case PrimKind::PK_Int:
    return "int";
  case PrimKind::PK_Uint:
    return "uint";
  case PrimKind::PK_Float:
    return "float";
  case PrimKind::PK_Complex:
    return "complex";
  case PrimKind::PK_CChar:
    return "cchar";
  case PrimKind::PK_WChar:
    return "wchar";
  }
  assert(false && "unknown PrimKind");
  return "?";
}

static bool validPrimBits(PrimKind Kind, unsigned Bits) {
  switch (Kind) {
  case PrimKind::PK_Int:
  case PrimKind::PK_Uint:
    return Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64;
  case PrimKind::PK_Float:
    return Bits == 32 || Bits == 64 || Bits == 128;
  case PrimKind::PK_WChar:
    return Bits == 16 || Bits == 32;
  case PrimKind::PK_Bool:
  case PrimKind::PK_Complex:
  case PrimKind::PK_CChar:
    return Bits == 0;
  }
  return false;
}

Type Type::makePrim(PrimKind Kind, unsigned Bits) {
  assert(validPrimBits(Kind, Bits) && "invalid primitive width");
  Type T(TypeKind::TK_Primitive);
  T.Prim = Kind;
  T.Bits = Bits;
  return T;
}

Type Type::makePointer(Type Pointee) {
  Type T(TypeKind::TK_Pointer);
  T.Inner = std::make_shared<const Type>(std::move(Pointee));
  return T;
}

Type Type::makeArray(Type Element) {
  Type T(TypeKind::TK_Array);
  T.Inner = std::make_shared<const Type>(std::move(Element));
  return T;
}

Type Type::makeConst(Type Underlying) {
  Type T(TypeKind::TK_Const);
  T.Inner = std::make_shared<const Type>(std::move(Underlying));
  return T;
}

Type Type::makeNamed(std::string Name, Type Underlying) {
  assert(!Name.empty() && "named type with empty name");
  Type T(TypeKind::TK_Name);
  T.NameStr = std::move(Name);
  T.Inner = std::make_shared<const Type>(std::move(Underlying));
  return T;
}

std::vector<std::string> Type::tokens() const {
  std::vector<std::string> Out;
  const Type *Current = this;
  while (true) {
    switch (Current->Kind) {
    case TypeKind::TK_Primitive:
      Out.emplace_back("primitive");
      Out.emplace_back(primKindName(Current->Prim));
      if (primKindHasBits(Current->Prim))
        Out.emplace_back(std::to_string(Current->Bits));
      return Out;
    case TypeKind::TK_Pointer:
      Out.emplace_back("pointer");
      break;
    case TypeKind::TK_Array:
      Out.emplace_back("array");
      break;
    case TypeKind::TK_Const:
      Out.emplace_back("const");
      break;
    case TypeKind::TK_Name:
      Out.emplace_back("name");
      Out.emplace_back("\"" + Current->NameStr + "\"");
      break;
    case TypeKind::TK_Struct:
      Out.emplace_back("struct");
      return Out;
    case TypeKind::TK_Class:
      Out.emplace_back("class");
      return Out;
    case TypeKind::TK_Union:
      Out.emplace_back("union");
      return Out;
    case TypeKind::TK_Enum:
      Out.emplace_back("enum");
      return Out;
    case TypeKind::TK_Function:
      Out.emplace_back("function");
      return Out;
    case TypeKind::TK_Unknown:
      Out.emplace_back("unknown");
      return Out;
    }
    Current = Current->Inner.get();
    assert(Current && "wrapper without inner type");
  }
}

std::string Type::toString() const {
  return joinStrings(tokens(), " ");
}

unsigned Type::nestingDepth() const {
  unsigned Depth = 0;
  const Type *Current = this;
  while (Current->hasInner()) {
    ++Depth;
    Current = Current->Inner.get();
  }
  return Depth;
}

bool Type::operator==(const Type &Other) const {
  const Type *A = this;
  const Type *B = &Other;
  while (true) {
    if (A->Kind != B->Kind)
      return false;
    switch (A->Kind) {
    case TypeKind::TK_Primitive:
      return A->Prim == B->Prim && A->Bits == B->Bits;
    case TypeKind::TK_Name:
      if (A->NameStr != B->NameStr)
        return false;
      break;
    default:
      break;
    }
    if (!A->hasInner())
      return true;
    A = A->Inner.get();
    B = B->Inner.get();
  }
}

namespace {

/// Recursive-descent parser over the prefix token stream.
class TypeParser {
public:
  explicit TypeParser(const std::vector<std::string> &Tokens)
      : Tokens(Tokens) {}

  Result<Type> run() {
    Result<Type> Parsed = parse(0);
    if (Parsed.isErr())
      return Parsed;
    if (Position != Tokens.size())
      return Error("trailing tokens after type");
    return Parsed;
  }

private:
  Result<Type> parse(unsigned Depth) {
    // Generous recursion bound; malformed model output must not overflow the
    // stack.
    if (Depth > 64)
      return Error("type nesting too deep");
    if (Position >= Tokens.size())
      return Error("unexpected end of type");
    const std::string &Head = Tokens[Position++];
    if (Head == "primitive")
      return parsePrimitive();
    if (Head == "pointer") {
      Result<Type> Inner = parse(Depth + 1);
      if (Inner.isErr())
        return Inner;
      return Type::makePointer(Inner.take());
    }
    if (Head == "array") {
      Result<Type> Inner = parse(Depth + 1);
      if (Inner.isErr())
        return Inner;
      return Type::makeArray(Inner.take());
    }
    if (Head == "const") {
      Result<Type> Inner = parse(Depth + 1);
      if (Inner.isErr())
        return Inner;
      return Type::makeConst(Inner.take());
    }
    if (Head == "name") {
      if (Position >= Tokens.size())
        return Error("'name' without a literal");
      std::string Literal = Tokens[Position++];
      if (Literal.size() < 2 || Literal.front() != '"' ||
          Literal.back() != '"')
        return Error("name literal must be quoted");
      std::string Name = Literal.substr(1, Literal.size() - 2);
      if (Name.empty())
        return Error("empty name literal");
      Result<Type> Inner = parse(Depth + 1);
      if (Inner.isErr())
        return Inner;
      return Type::makeNamed(std::move(Name), Inner.take());
    }
    if (Head == "struct")
      return Type::makeStruct();
    if (Head == "class")
      return Type::makeClass();
    if (Head == "union")
      return Type::makeUnion();
    if (Head == "enum")
      return Type::makeEnum();
    if (Head == "function")
      return Type::makeFunction();
    if (Head == "unknown")
      return Type::makeUnknown();
    return Error("unknown type token '" + Head + "'");
  }

  Result<Type> parsePrimitive() {
    if (Position >= Tokens.size())
      return Error("'primitive' without a kind");
    const std::string &KindToken = Tokens[Position++];
    PrimKind Kind;
    if (KindToken == "bool")
      Kind = PrimKind::PK_Bool;
    else if (KindToken == "int")
      Kind = PrimKind::PK_Int;
    else if (KindToken == "uint")
      Kind = PrimKind::PK_Uint;
    else if (KindToken == "float")
      Kind = PrimKind::PK_Float;
    else if (KindToken == "complex")
      Kind = PrimKind::PK_Complex;
    else if (KindToken == "cchar")
      Kind = PrimKind::PK_CChar;
    else if (KindToken == "wchar")
      Kind = PrimKind::PK_WChar;
    else
      return Error("unknown primitive '" + KindToken + "'");

    unsigned Bits = 0;
    if (primKindHasBits(Kind)) {
      if (Position >= Tokens.size())
        return Error("primitive missing bit width");
      const std::string &BitsToken = Tokens[Position++];
      Bits = 0;
      for (char Digit : BitsToken) {
        if (Digit < '0' || Digit > '9')
          return Error("bad bit width '" + BitsToken + "'");
        Bits = Bits * 10 + static_cast<unsigned>(Digit - '0');
        if (Bits > 1024)
          return Error("bit width out of range");
      }
      if (!validPrimBits(Kind, Bits))
        return Error("invalid width " + BitsToken + " for " + KindToken);
    }
    return Type::makePrim(Kind, Bits);
  }

  const std::vector<std::string> &Tokens;
  size_t Position = 0;
};

} // namespace

Result<Type> parseType(const std::vector<std::string> &Tokens) {
  TypeParser Parser(Tokens);
  return Parser.run();
}

Result<Type> parseType(const std::string &Text) {
  // Name literals are quoted and may contain spaces ("basic_string<char,
  // ...>"), so tokenization must keep quoted regions intact.
  std::vector<std::string> Tokens;
  size_t I = 0;
  while (I < Text.size()) {
    while (I < Text.size() && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I >= Text.size())
      break;
    size_t Start = I;
    if (Text[I] == '"') {
      ++I;
      while (I < Text.size() && Text[I] != '"')
        ++I;
      if (I >= Text.size())
        return Error("unterminated name literal");
      ++I; // Include the closing quote.
    } else {
      while (I < Text.size() &&
             !std::isspace(static_cast<unsigned char>(Text[I])))
        ++I;
    }
    Tokens.emplace_back(Text.substr(Start, I - Start));
  }
  return parseType(Tokens);
}

std::vector<std::string> typeLanguageKeywords() {
  return {"primitive", "pointer", "array",  "const",   "name",  "struct",
          "class",     "union",   "enum",   "function", "unknown", "bool",
          "int",       "uint",    "float",  "complex", "cchar", "wchar",
          "8",         "16",      "32",     "64",      "128"};
}

} // namespace typelang
} // namespace snowwhite
