//===- typelang/fields.h - Field-shape summaries (extension) ---------------===//
//
// EXTENSION beyond the paper. SNOWWHITE deliberately does not capture the
// individual fields of aggregates and names their prediction as future work
// (§3.3: "prediction of field types is a challenge left for future work";
// §6.4: "Future work could explore to predict information about the struct
// fields as well"). This module implements the target side of that task: a
// flat token summary of the pointee aggregate's field shapes, e.g. a
// `FILE *` parameter yields {"u32", "i32", "i64", "ptr"}. The learnable
// source signal exists because field accesses compile to loads/stores at
// the fields' offsets with the fields' widths.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_TYPELANG_FIELDS_H
#define SNOWWHITE_TYPELANG_FIELDS_H

#include "dwarf/die.h"
#include "typelang/type.h"

#include <string>
#include <vector>

namespace snowwhite {
namespace typelang {

/// The single shape token of a (field) type: "bool", "i8".."u64", "f32",
/// "f64", "cchar", "wchar", "complex", "ptr", "arr", "enum", "agg", "fn",
/// or "unk".
std::string shapeToken(const Type &T);

/// If TypeDie (after stripping typedefs/const/volatile and exactly the
/// outermost pointer/reference) resolves to a defined aggregate, returns the
/// shape tokens of its first MaxFields fields, in declaration order.
/// Returns an empty vector for anything else (primitives, opaque pointers,
/// deep pointers, enums, ...).
std::vector<std::string> fieldShapeTokens(const dwarf::DebugInfo &Info,
                                          dwarf::DieRef TypeDie,
                                          unsigned MaxFields = 8);

} // namespace typelang
} // namespace snowwhite

#endif // SNOWWHITE_TYPELANG_FIELDS_H
