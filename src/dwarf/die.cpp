#include "dwarf/die.h"

#include <sstream>

namespace snowwhite {
namespace dwarf {

const char *tagName(Tag T) {
  switch (T) {
  case Tag::ArrayType:
    return "DW_TAG_array_type";
  case Tag::ClassType:
    return "DW_TAG_class_type";
  case Tag::EnumerationType:
    return "DW_TAG_enumeration_type";
  case Tag::FormalParameter:
    return "DW_TAG_formal_parameter";
  case Tag::Member:
    return "DW_TAG_member";
  case Tag::PointerType:
    return "DW_TAG_pointer_type";
  case Tag::ReferenceType:
    return "DW_TAG_reference_type";
  case Tag::CompileUnit:
    return "DW_TAG_compile_unit";
  case Tag::StructureType:
    return "DW_TAG_structure_type";
  case Tag::SubroutineType:
    return "DW_TAG_subroutine_type";
  case Tag::Typedef:
    return "DW_TAG_typedef";
  case Tag::UnionType:
    return "DW_TAG_union_type";
  case Tag::SubrangeType:
    return "DW_TAG_subrange_type";
  case Tag::BaseType:
    return "DW_TAG_base_type";
  case Tag::ConstType:
    return "DW_TAG_const_type";
  case Tag::Enumerator:
    return "DW_TAG_enumerator";
  case Tag::Subprogram:
    return "DW_TAG_subprogram";
  case Tag::Variable:
    return "DW_TAG_variable";
  case Tag::VolatileType:
    return "DW_TAG_volatile_type";
  case Tag::RestrictType:
    return "DW_TAG_restrict_type";
  case Tag::UnspecifiedType:
    return "DW_TAG_unspecified_type";
  }
  return "DW_TAG_unknown";
}

const char *attrName(Attr A) {
  switch (A) {
  case Attr::Name:
    return "DW_AT_name";
  case Attr::ByteSize:
    return "DW_AT_byte_size";
  case Attr::LowPc:
    return "DW_AT_low_pc";
  case Attr::Language:
    return "DW_AT_language";
  case Attr::Producer:
    return "DW_AT_producer";
  case Attr::UpperBound:
    return "DW_AT_upper_bound";
  case Attr::Count:
    return "DW_AT_count";
  case Attr::Declaration:
    return "DW_AT_declaration";
  case Attr::Encoding:
    return "DW_AT_encoding";
  case Attr::External:
    return "DW_AT_external";
  case Attr::Type:
    return "DW_AT_type";
  case Attr::ConstValue:
    return "DW_AT_const_value";
  case Attr::DataMemberLocation:
    return "DW_AT_data_member_location";
  }
  return "DW_AT_unknown";
}

DebugInfo::DebugInfo() {
  // Ref 0 is always the compile-unit root.
  Dies.emplace_back();
  Dies[0].DieTag = Tag::CompileUnit;
}

DieRef DebugInfo::createDie(Tag T) {
  Dies.emplace_back();
  Dies.back().DieTag = T;
  return static_cast<DieRef>(Dies.size() - 1);
}

void DebugInfo::addChild(DieRef Parent, DieRef Child) {
  assert(Parent < Dies.size() && Child < Dies.size() && "bad DieRef");
  assert(Parent != Child && "DIE cannot be its own child");
  // Defensive on builds without assertions: drop structurally impossible
  // edges instead of corrupting the tree.
  if (Parent >= Dies.size() || Child >= Dies.size() || Parent == Child)
    return;
  Dies[Parent].Children.push_back(Child);
}

/// Finds an attribute slot, or nullptr.
static const AttrValue *findAttr(const Die &D, Attr A) {
  for (const AttrValue &Value : D.Attributes)
    if (Value.Attribute == A)
      return &Value;
  return nullptr;
}

static AttrValue &upsertAttr(Die &D, Attr A) {
  for (AttrValue &Value : D.Attributes)
    if (Value.Attribute == A)
      return Value;
  D.Attributes.push_back(AttrValue{A, AttrValueKind::AVK_Uint, 0, {}});
  return D.Attributes.back();
}

void DebugInfo::setUint(DieRef D, Attr A, uint64_t Value) {
  AttrValue &Slot = upsertAttr(die(D), A);
  Slot.Kind = AttrValueKind::AVK_Uint;
  Slot.Uint = Value;
}

void DebugInfo::setString(DieRef D, Attr A, std::string Value) {
  AttrValue &Slot = upsertAttr(die(D), A);
  Slot.Kind = AttrValueKind::AVK_String;
  Slot.String = std::move(Value);
}

void DebugInfo::setRef(DieRef D, Attr A, DieRef Target) {
  assert(Target < Dies.size() && "dangling DieRef");
  AttrValue &Slot = upsertAttr(die(D), A);
  Slot.Kind = AttrValueKind::AVK_Ref;
  Slot.Uint = Target;
}

void DebugInfo::setFlag(DieRef D, Attr A, bool Value) {
  AttrValue &Slot = upsertAttr(die(D), A);
  Slot.Kind = AttrValueKind::AVK_Flag;
  Slot.Uint = Value ? 1 : 0;
}

std::optional<uint64_t> DebugInfo::getUint(DieRef D, Attr A) const {
  const AttrValue *Value = findAttr(die(D), A);
  if (!Value || Value->Kind != AttrValueKind::AVK_Uint)
    return std::nullopt;
  return Value->Uint;
}

std::optional<std::string> DebugInfo::getString(DieRef D, Attr A) const {
  const AttrValue *Value = findAttr(die(D), A);
  if (!Value || Value->Kind != AttrValueKind::AVK_String)
    return std::nullopt;
  return Value->String;
}

std::optional<DieRef> DebugInfo::getRef(DieRef D, Attr A) const {
  const AttrValue *Value = findAttr(die(D), A);
  if (!Value || Value->Kind != AttrValueKind::AVK_Ref)
    return std::nullopt;
  return static_cast<DieRef>(Value->Uint);
}

bool DebugInfo::getFlag(DieRef D, Attr A) const {
  const AttrValue *Value = findAttr(die(D), A);
  return Value && Value->Kind == AttrValueKind::AVK_Flag && Value->Uint != 0;
}

std::vector<DieRef> DebugInfo::subprograms() const {
  std::vector<DieRef> Result;
  // DFS over the child tree from the root. The visited set makes the walk
  // terminate even if the child graph is not a tree (hostile or buggy
  // construction); each DIE is reported at most once.
  std::vector<bool> Visited(Dies.size(), false);
  std::vector<DieRef> Stack = {root()};
  while (!Stack.empty()) {
    DieRef Current = Stack.back();
    Stack.pop_back();
    if (Current >= Dies.size() || Visited[Current])
      continue;
    Visited[Current] = true;
    if (tag(Current) == Tag::Subprogram)
      Result.push_back(Current);
    const std::vector<DieRef> &Kids = children(Current);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }
  return Result;
}

DieRef DebugInfo::findSubprogramByLowPc(uint64_t LowPc) const {
  for (DieRef Sub : subprograms()) {
    std::optional<uint64_t> Pc = getUint(Sub, Attr::LowPc);
    if (Pc && *Pc == LowPc)
      return Sub;
  }
  return InvalidDieRef;
}

std::vector<DieRef> DebugInfo::formalParameters(DieRef Subprogram) const {
  assert(tag(Subprogram) == Tag::Subprogram && "not a subprogram DIE");
  std::vector<DieRef> Params;
  for (DieRef Child : children(Subprogram))
    if (tag(Child) == Tag::FormalParameter)
      Params.push_back(Child);
  return Params;
}

DieRef DebugInfo::typeOf(DieRef D) const {
  std::optional<DieRef> Ref = getRef(D, Attr::Type);
  return Ref ? *Ref : InvalidDieRef;
}

void DebugInfo::dumpImpl(DieRef D, int Depth, int MaxDepth, std::string &Out,
                         std::vector<bool> &Visited) const {
  std::string Indent(static_cast<size_t>(Depth) * 2, ' ');
  Out += Indent;
  Out += tagName(tag(D));
  Out += " @";
  Out += std::to_string(D);
  Out += "\n";
  if (Visited[D]) {
    Out += Indent + "  (cycle)\n";
    return;
  }
  Visited[D] = true;
  for (const AttrValue &Value : die(D).Attributes) {
    Out += Indent + "  " + attrName(Value.Attribute) + ": ";
    switch (Value.Kind) {
    case AttrValueKind::AVK_Uint:
      Out += std::to_string(Value.Uint);
      break;
    case AttrValueKind::AVK_String:
      Out += "\"" + Value.String + "\"";
      break;
    case AttrValueKind::AVK_Ref:
      Out += "@" + std::to_string(Value.Uint);
      break;
    case AttrValueKind::AVK_Flag:
      Out += Value.Uint ? "true" : "false";
      break;
    }
    Out += "\n";
  }
  if (Depth >= MaxDepth)
    return;
  // Recurse into the type reference (the interesting edge for Fig. 1c) and
  // into children.
  std::optional<DieRef> TypeRef = getRef(D, Attr::Type);
  if (TypeRef)
    dumpImpl(*TypeRef, Depth + 1, MaxDepth, Out, Visited);
  for (DieRef Child : children(D))
    dumpImpl(Child, Depth + 1, MaxDepth, Out, Visited);
}

std::string DebugInfo::dump(DieRef D, int MaxDepth) const {
  std::string Out;
  std::vector<bool> Visited(Dies.size(), false);
  dumpImpl(D, 0, MaxDepth, Out, Visited);
  return Out;
}

} // namespace dwarf
} // namespace snowwhite
