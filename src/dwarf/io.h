//===- dwarf/io.h - Serialize debug info into wasm custom sections --------===//
//
// DWARF data is split over custom sections of the WebAssembly binary
// (.debug_info for the DIE tree, .debug_str for the string table), like
// Emscripten/LLVM emit when compiling with -g. The encoding mirrors physical
// DWARF: DIEs are nested depth-first with null-entry terminators, strings are
// referenced by offset into .debug_str (DW_FORM_strp), and DIE references are
// 4-byte offsets into .debug_info (DW_FORM_ref4) — which is what allows the
// attribute graph to be cyclic.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DWARF_IO_H
#define SNOWWHITE_DWARF_IO_H

#include "dwarf/die.h"
#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <vector>

namespace snowwhite {
namespace dwarf {

/// Serialized section pair.
struct DebugSections {
  std::vector<uint8_t> Info; ///< .debug_info bytes.
  std::vector<uint8_t> Str;  ///< .debug_str bytes.
};

/// Serializes Info. DIEs that are referenced but not attached to any parent
/// are adopted as children of the compile-unit root (as real compilers place
/// type DIEs under the CU).
DebugSections writeDebugSections(const DebugInfo &Info);

/// Parses the section pair back into a DebugInfo. DIE references are
/// resolved from byte offsets back to DieRefs.
Result<DebugInfo> readDebugSections(const std::vector<uint8_t> &InfoBytes,
                                    const std::vector<uint8_t> &StrBytes);

/// Appends .debug_info/.debug_str custom sections to M.
void attachDebugInfo(const DebugInfo &Info, wasm::Module &M);

/// Extracts and parses debug info from M's custom sections. Errors if the
/// binary is stripped (sections absent) or malformed.
Result<DebugInfo> extractDebugInfo(const wasm::Module &M);

/// Removes debug custom sections from M, like `llvm-strip` would. Used to
/// model the stripped binaries a reverse engineer encounters.
void stripDebugInfo(wasm::Module &M);

} // namespace dwarf
} // namespace snowwhite

#endif // SNOWWHITE_DWARF_IO_H
