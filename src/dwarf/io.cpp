#include "dwarf/io.h"

#include "support/leb128.h"

#include <map>
#include <unordered_map>

namespace snowwhite {
namespace dwarf {

namespace {

// Attribute form codes used by this writer (subset of DW_FORM_*).
constexpr uint8_t FormUdata = 0x0f; // ULEB constant (DW_FORM_udata).
constexpr uint8_t FormStrp = 0x0e;  // 4-byte .debug_str offset (DW_FORM_strp).
constexpr uint8_t FormRef4 = 0x13;  // 4-byte .debug_info offset (DW_FORM_ref4).
constexpr uint8_t FormFlag = 0x0c;  // 1-byte flag (DW_FORM_flag).

void writeU32(uint32_t Value, std::vector<uint8_t> &Out) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<uint8_t>(Value >> Shift));
}

bool readU32At(const std::vector<uint8_t> &Bytes, size_t &Offset,
               uint32_t &Value) {
  if (Offset + 4 > Bytes.size())
    return false;
  Value = 0;
  for (int Shift = 0; Shift < 32; Shift += 8)
    Value |= static_cast<uint32_t>(Bytes[Offset++]) << Shift;
  return true;
}

/// Interns strings into a .debug_str image, reusing offsets for duplicates.
class StringTable {
public:
  uint32_t intern(const std::string &Text) {
    auto It = Offsets.find(Text);
    if (It != Offsets.end())
      return It->second;
    uint32_t Offset = static_cast<uint32_t>(Bytes.size());
    Bytes.insert(Bytes.end(), Text.begin(), Text.end());
    Bytes.push_back(0);
    Offsets.emplace(Text, Offset);
    return Offset;
  }

  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
  std::unordered_map<std::string, uint32_t> Offsets;
};

/// Size of one DIE's own encoding (tag, hasChildren, attributes), excluding
/// children and terminators.
size_t dieOwnSize(const Die &D) {
  size_t Size = encodedULEB128Size(static_cast<uint64_t>(D.DieTag));
  Size += 1; // hasChildren byte.
  Size += encodedULEB128Size(D.Attributes.size());
  for (const AttrValue &Value : D.Attributes) {
    Size += encodedULEB128Size(static_cast<uint64_t>(Value.Attribute));
    Size += 1; // Form byte.
    switch (Value.Kind) {
    case AttrValueKind::AVK_Uint:
      Size += encodedULEB128Size(Value.Uint);
      break;
    case AttrValueKind::AVK_String:
    case AttrValueKind::AVK_Ref:
      Size += 4;
      break;
    case AttrValueKind::AVK_Flag:
      Size += 1;
      break;
    }
  }
  return Size;
}

} // namespace

DebugSections writeDebugSections(const DebugInfo &Info) {
  // Adopt unattached DIEs under the root so the DFS covers everything.
  std::vector<bool> Attached(Info.size(), false);
  Attached[Info.root()] = true;
  for (size_t I = 0; I < Info.size(); ++I)
    for (DieRef Child : Info.children(static_cast<DieRef>(I)))
      Attached[Child] = true;
  std::vector<DieRef> ExtraRoots;
  for (size_t I = 0; I < Info.size(); ++I)
    if (!Attached[I])
      ExtraRoots.push_back(static_cast<DieRef>(I));

  auto childrenOf = [&](DieRef D) {
    std::vector<DieRef> Kids = Info.children(D);
    if (D == Info.root())
      Kids.insert(Kids.end(), ExtraRoots.begin(), ExtraRoots.end());
    return Kids;
  };

  // Pass 1: assign byte offsets in DFS order. A DIE with children is
  // followed by its children and a single null byte terminator.
  std::vector<uint32_t> OffsetOf(Info.size(), 0);
  size_t Cursor = 0;
  // Iterative DFS with explicit post-action for the terminator byte.
  struct WorkItem {
    DieRef D;
    bool Terminator;
  };
  std::vector<WorkItem> Stack = {{Info.root(), false}};
  while (!Stack.empty()) {
    WorkItem Item = Stack.back();
    Stack.pop_back();
    if (Item.Terminator) {
      Cursor += 1;
      continue;
    }
    OffsetOf[Item.D] = static_cast<uint32_t>(Cursor);
    Cursor += dieOwnSize(Info.die(Item.D));
    std::vector<DieRef> Kids = childrenOf(Item.D);
    if (!Kids.empty()) {
      Stack.push_back({Item.D, true});
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
        Stack.push_back({*It, false});
    }
  }

  // Pass 2: emit.
  DebugSections Sections;
  StringTable Strings;
  std::vector<WorkItem> EmitStack = {{Info.root(), false}};
  while (!EmitStack.empty()) {
    WorkItem Item = EmitStack.back();
    EmitStack.pop_back();
    std::vector<uint8_t> &Out = Sections.Info;
    if (Item.Terminator) {
      Out.push_back(0); // Null entry terminates the sibling chain.
      continue;
    }
    const Die &D = Info.die(Item.D);
    assert(OffsetOf[Item.D] == Out.size() && "offset assignment diverged");
    encodeULEB128(static_cast<uint64_t>(D.DieTag), Out);
    std::vector<DieRef> Kids = childrenOf(Item.D);
    Out.push_back(Kids.empty() ? 0 : 1);
    encodeULEB128(D.Attributes.size(), Out);
    for (const AttrValue &Value : D.Attributes) {
      encodeULEB128(static_cast<uint64_t>(Value.Attribute), Out);
      switch (Value.Kind) {
      case AttrValueKind::AVK_Uint:
        Out.push_back(FormUdata);
        encodeULEB128(Value.Uint, Out);
        break;
      case AttrValueKind::AVK_String:
        Out.push_back(FormStrp);
        writeU32(Strings.intern(Value.String), Out);
        break;
      case AttrValueKind::AVK_Ref:
        Out.push_back(FormRef4);
        writeU32(OffsetOf[static_cast<DieRef>(Value.Uint)], Out);
        break;
      case AttrValueKind::AVK_Flag:
        Out.push_back(FormFlag);
        Out.push_back(Value.Uint ? 1 : 0);
        break;
      }
    }
    if (!Kids.empty()) {
      EmitStack.push_back({Item.D, true});
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
        EmitStack.push_back({*It, false});
    }
  }
  Sections.Str = Strings.take();
  return Sections;
}

namespace {

/// Maximum DIE tree depth the parser will recurse into. A hostile
/// .debug_info can nest one DIE per ~4 bytes, so without a cap a megabyte of
/// input drives the recursion tens of thousands of frames deep and overflows
/// the thread stack. Real DWARF nests types a handful of levels.
constexpr int MaxDieDepth = 256;

/// Recursive-descent parser state for .debug_info.
class InfoParser {
public:
  InfoParser(const std::vector<uint8_t> &InfoBytes,
             const std::vector<uint8_t> &StrBytes, DebugInfo &Out)
      : InfoBytes(InfoBytes), StrBytes(StrBytes), Out(Out) {}

  /// Parses the root DIE (and with it, the entire tree).
  Result<void> run() {
    size_t Offset = 0;
    DieRef Root;
    Result<void> Status = parseDie(Offset, /*IsRoot=*/true, /*Depth=*/0, Root);
    if (Status.isErr())
      return Status.withContext(".debug_info");
    if (Offset != InfoBytes.size())
      return Error(ErrorCode::Malformed,
                   ".debug_info: trailing bytes after root DIE");
    // Resolve raw ref offsets to DieRefs.
    for (auto &[D, Slot] : PendingRefs) {
      auto It = RefByOffset.find(Slot.second);
      if (It == RefByOffset.end())
        return Error(ErrorCode::Malformed,
                     ".debug_info: DW_FORM_ref4 target offset " +
                         std::to_string(Slot.second) +
                         " not at a DIE boundary");
      Out.setRef(D, Slot.first, It->second);
    }
    return {};
  }

private:
  Result<void> parseDie(size_t &Offset, bool IsRoot, int Depth,
                        DieRef &NewRef) {
    if (Depth > MaxDieDepth)
      return Error(ErrorCode::LimitExceeded,
                   "DIE tree deeper than " + std::to_string(MaxDieDepth));
    size_t DieOffset = Offset;
    auto At = [&]() { return " at offset " + std::to_string(DieOffset); };
    uint64_t TagValue;
    if (!decodeULEB128(InfoBytes, Offset, TagValue))
      return Error(ErrorCode::Truncated, "truncated DIE tag" + At());
    Tag DieTag = static_cast<Tag>(TagValue);
    if (IsRoot) {
      if (DieTag != Tag::CompileUnit)
        return Error(ErrorCode::Malformed, "root DIE is not a compile unit");
      NewRef = Out.root();
    } else {
      NewRef = Out.createDie(DieTag);
    }
    RefByOffset.emplace(static_cast<uint32_t>(DieOffset), NewRef);

    if (Offset >= InfoBytes.size())
      return Error(ErrorCode::Truncated, "truncated hasChildren" + At());
    uint8_t HasChildren = InfoBytes[Offset++];

    uint64_t NumAttrs;
    if (!decodeULEB128(InfoBytes, Offset, NumAttrs))
      return Error(ErrorCode::Truncated, "truncated attribute count" + At());
    // Every attribute costs at least two bytes (code + form); an attribute
    // count the remaining bytes cannot back is malformed, and rejecting it
    // here keeps the loop bound by the input size.
    if (NumAttrs > (InfoBytes.size() - Offset + 1) / 2)
      return Error(ErrorCode::Malformed,
                   "attribute count " + std::to_string(NumAttrs) +
                       " exceeds remaining bytes" + At());
    for (uint64_t I = 0; I < NumAttrs; ++I) {
      uint64_t AttrValueCode;
      if (!decodeULEB128(InfoBytes, Offset, AttrValueCode))
        return Error(ErrorCode::Truncated, "truncated attribute code" + At());
      Attr A = static_cast<Attr>(AttrValueCode);
      if (Offset >= InfoBytes.size())
        return Error(ErrorCode::Truncated, "truncated form" + At());
      uint8_t Form = InfoBytes[Offset++];
      switch (Form) {
      case FormUdata: {
        uint64_t Value;
        if (!decodeULEB128(InfoBytes, Offset, Value))
          return Error(ErrorCode::Truncated, "truncated udata" + At());
        Out.setUint(NewRef, A, Value);
        break;
      }
      case FormStrp: {
        uint32_t StrOffset;
        if (!readU32At(InfoBytes, Offset, StrOffset))
          return Error(ErrorCode::Truncated, "truncated strp" + At());
        if (StrOffset >= StrBytes.size())
          return Error(ErrorCode::Malformed,
                       "strp offset past .debug_str" + At());
        std::string Text;
        for (size_t P = StrOffset; P < StrBytes.size() && StrBytes[P]; ++P)
          Text += static_cast<char>(StrBytes[P]);
        Out.setString(NewRef, A, std::move(Text));
        break;
      }
      case FormRef4: {
        uint32_t Target;
        if (!readU32At(InfoBytes, Offset, Target))
          return Error(ErrorCode::Truncated, "truncated ref4" + At());
        PendingRefs.emplace_back(NewRef, std::make_pair(A, Target));
        break;
      }
      case FormFlag: {
        if (Offset >= InfoBytes.size())
          return Error(ErrorCode::Truncated, "truncated flag" + At());
        Out.setFlag(NewRef, A, InfoBytes[Offset++] != 0);
        break;
      }
      default:
        return Error(ErrorCode::Unsupported, "unknown attribute form " +
                                                 std::to_string(Form) + At());
      }
    }

    if (HasChildren) {
      while (true) {
        if (Offset >= InfoBytes.size())
          return Error(ErrorCode::Truncated,
                       "missing null terminator in sibling chain" + At());
        if (InfoBytes[Offset] == 0) {
          ++Offset;
          break;
        }
        DieRef Child;
        Result<void> Status =
            parseDie(Offset, /*IsRoot=*/false, Depth + 1, Child);
        if (Status.isErr())
          return Status;
        Out.addChild(NewRef, Child);
      }
    }
    return {};
  }

  const std::vector<uint8_t> &InfoBytes;
  const std::vector<uint8_t> &StrBytes;
  DebugInfo &Out;
  std::unordered_map<uint32_t, DieRef> RefByOffset;
  std::vector<std::pair<DieRef, std::pair<Attr, uint32_t>>> PendingRefs;
};

} // namespace

Result<DebugInfo> readDebugSections(const std::vector<uint8_t> &InfoBytes,
                                    const std::vector<uint8_t> &StrBytes) {
  DebugInfo Info;
  InfoParser Parser(InfoBytes, StrBytes, Info);
  Result<void> Status = Parser.run();
  if (Status.isErr())
    return Status.error();
  return Info;
}

void attachDebugInfo(const DebugInfo &Info, wasm::Module &M) {
  DebugSections Sections = writeDebugSections(Info);
  M.Customs.push_back({".debug_info", std::move(Sections.Info)});
  M.Customs.push_back({".debug_str", std::move(Sections.Str)});
}

Result<DebugInfo> extractDebugInfo(const wasm::Module &M) {
  const wasm::CustomSection *InfoSection = M.findCustom(".debug_info");
  if (!InfoSection)
    return Error(ErrorCode::NotFound,
                 "no .debug_info section (stripped binary?)");
  const wasm::CustomSection *StrSection = M.findCustom(".debug_str");
  if (!StrSection)
    return Error(ErrorCode::NotFound, "no .debug_str section");
  return readDebugSections(InfoSection->Bytes, StrSection->Bytes);
}

void stripDebugInfo(wasm::Module &M) {
  std::vector<wasm::CustomSection> Kept;
  for (wasm::CustomSection &Section : M.Customs)
    if (Section.Name.rfind(".debug_", 0) != 0)
      Kept.push_back(std::move(Section));
  M.Customs = std::move(Kept);
}

} // namespace dwarf
} // namespace snowwhite
