//===- dwarf/die.h - DWARF debugging-information entries -------------------===//
//
// A faithful subset of the DWARF debugging format (DWARF Committee, v5):
// debugging information entries (DIEs) with a tag, attributes, and children.
// Attributes can reference other DIEs, so the information forms a directed,
// possibly cyclic graph (paper Fig. 1c) — e.g. a struct whose member points
// back at the struct. Children form a strict tree (as in .debug_info).
//
// Numeric tag/attribute/encoding values match the DWARF standard so that the
// serialized .debug_info section is recognizable.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_DWARF_DIE_H
#define SNOWWHITE_DWARF_DIE_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snowwhite {
namespace dwarf {

/// DWARF tags (DW_TAG_*), numeric values per the DWARF v5 standard.
enum class Tag : uint16_t {
  ArrayType = 0x01,
  ClassType = 0x02,
  EnumerationType = 0x04,
  FormalParameter = 0x05,
  Member = 0x0d,
  PointerType = 0x0f,
  ReferenceType = 0x10,
  CompileUnit = 0x11,
  StructureType = 0x13,
  SubroutineType = 0x15,
  Typedef = 0x16,
  UnionType = 0x17,
  SubrangeType = 0x21,
  BaseType = 0x24,
  ConstType = 0x26,
  Enumerator = 0x28,
  Subprogram = 0x2e,
  Variable = 0x34,
  VolatileType = 0x35,
  RestrictType = 0x37,
  UnspecifiedType = 0x3b,
};

/// Returns "DW_TAG_pointer_type" style names for diagnostics.
const char *tagName(Tag T);

/// DWARF attributes (DW_AT_*), numeric values per the standard.
enum class Attr : uint16_t {
  Name = 0x03,
  ByteSize = 0x0b,
  LowPc = 0x11,
  Language = 0x13,
  Producer = 0x25,
  UpperBound = 0x2f,
  Count = 0x37,
  Declaration = 0x3c,
  Encoding = 0x3e,
  External = 0x3f,
  Type = 0x49,
  ConstValue = 0x1c,
  DataMemberLocation = 0x38,
};

/// Returns "DW_AT_name" style names for diagnostics.
const char *attrName(Attr A);

/// DWARF base-type encodings (DW_ATE_*).
enum class Encoding : uint8_t {
  Address = 0x01,
  Boolean = 0x02,
  ComplexFloat = 0x03,
  Float = 0x04,
  Signed = 0x05,
  SignedChar = 0x06,
  Unsigned = 0x07,
  UnsignedChar = 0x08,
  Utf = 0x10,
};

/// Index of a DIE inside a DebugInfo. Index 0 is the compile-unit root.
using DieRef = uint32_t;

/// Sentinel for "no DIE".
constexpr DieRef InvalidDieRef = ~DieRef(0);

/// Discriminates AttrValue's payload.
enum class AttrValueKind : uint8_t {
  AVK_Uint,
  AVK_String,
  AVK_Ref,
  AVK_Flag,
};

/// One attribute value: an unsigned constant, a string, a reference to
/// another DIE, or a presence flag.
struct AttrValue {
  Attr Attribute;
  AttrValueKind Kind;
  uint64_t Uint = 0;   ///< AVK_Uint / AVK_Flag (0 or 1) / AVK_Ref (DieRef).
  std::string String; ///< AVK_String.
};

/// One debugging information entry.
struct Die {
  Tag DieTag = Tag::CompileUnit;
  std::vector<AttrValue> Attributes;
  std::vector<DieRef> Children;
};

/// An in-memory .debug_info equivalent: a pool of DIEs with a compile-unit
/// root, plus convenience constructors and typed accessors.
class DebugInfo {
public:
  DebugInfo();

  /// The compile-unit root DIE (always ref 0).
  DieRef root() const { return 0; }

  /// Creates a new DIE with the given tag; it is not attached to any parent
  /// until addChild is called (type DIEs are often only referenced).
  DieRef createDie(Tag T);

  /// Appends Child to Parent's child list.
  void addChild(DieRef Parent, DieRef Child);

  /// Attribute setters (later setters for the same attribute overwrite).
  void setUint(DieRef D, Attr A, uint64_t Value);
  void setString(DieRef D, Attr A, std::string Value);
  void setRef(DieRef D, Attr A, DieRef Target);
  void setFlag(DieRef D, Attr A, bool Value = true);

  /// Attribute getters.
  std::optional<uint64_t> getUint(DieRef D, Attr A) const;
  std::optional<std::string> getString(DieRef D, Attr A) const;
  std::optional<DieRef> getRef(DieRef D, Attr A) const;
  bool getFlag(DieRef D, Attr A) const;

  Tag tag(DieRef D) const { return die(D).DieTag; }
  const std::vector<DieRef> &children(DieRef D) const {
    return die(D).Children;
  }

  const Die &die(DieRef D) const {
    assert(D < Dies.size() && "DieRef out of range");
    return Dies[D];
  }
  Die &die(DieRef D) {
    assert(D < Dies.size() && "DieRef out of range");
    return Dies[D];
  }

  size_t size() const { return Dies.size(); }

  /// All DIEs with tag Subprogram anywhere under the root (tree order).
  std::vector<DieRef> subprograms() const;

  /// The subprogram whose DW_AT_low_pc equals LowPc, or InvalidDieRef.
  DieRef findSubprogramByLowPc(uint64_t LowPc) const;

  /// The ordered formal parameters of a subprogram DIE.
  std::vector<DieRef> formalParameters(DieRef Subprogram) const;

  /// Follows DW_AT_type; returns InvalidDieRef if absent (e.g. void return).
  DieRef typeOf(DieRef D) const;

  /// Renders a DIE subtree like Fig. 1c for debugging and examples.
  std::string dump(DieRef D, int MaxDepth = 3) const;

private:
  std::vector<Die> Dies;

  void dumpImpl(DieRef D, int Depth, int MaxDepth, std::string &Out,
                std::vector<bool> &Visited) const;
};

} // namespace dwarf
} // namespace snowwhite

#endif // SNOWWHITE_DWARF_DIE_H
