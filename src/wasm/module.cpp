#include "wasm/module.h"

#include <cassert>

namespace snowwhite {
namespace wasm {

std::vector<ValType> Function::flattenedLocals() const {
  std::vector<ValType> Flat;
  for (const LocalRun &Run : Locals)
    for (uint32_t I = 0; I < Run.Count; ++I)
      Flat.push_back(Run.Type);
  return Flat;
}

uint32_t Module::internType(const FuncType &Type) {
  for (uint32_t I = 0; I < Types.size(); ++I)
    if (Types[I] == Type)
      return I;
  Types.push_back(Type);
  return static_cast<uint32_t>(Types.size() - 1);
}

const FuncType &Module::functionType(uint32_t DefinedIndex) const {
  assert(DefinedIndex < Functions.size() && "function index out of range");
  uint32_t TypeIndex = Functions[DefinedIndex].TypeIndex;
  assert(TypeIndex < Types.size() && "type index out of range");
  return Types[TypeIndex];
}

const CustomSection *Module::findCustom(const std::string &Name) const {
  for (const CustomSection &Section : Customs)
    if (Section.Name == Name)
      return &Section;
  return nullptr;
}

uint64_t Module::countInstructions() const {
  uint64_t Count = 0;
  for (const Function &Func : Functions)
    Count += Func.Body.size();
  return Count;
}

} // namespace wasm
} // namespace snowwhite
