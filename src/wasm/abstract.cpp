#include "wasm/abstract.h"

#include "support/hash.h"

namespace snowwhite {
namespace wasm {

std::string abstractInstr(const Instr &I) { return opcodeName(I.Op); }

uint64_t abstractFunctionHash(const Function &Func) {
  uint64_t Hash = 0xf00dULL;
  for (const Instr &I : Func.Body)
    Hash = hashCombine(Hash, static_cast<uint64_t>(I.Op));
  return Hash;
}

uint64_t approximateModuleSignature(const Module &M) {
  uint64_t Signature = 0xcafeULL;
  for (const Function &Func : M.Functions)
    Signature = hashCombine(Signature, abstractFunctionHash(Func));
  return Signature;
}

} // namespace wasm
} // namespace snowwhite
