#include "wasm/abstract.h"

#include "support/hash.h"

namespace snowwhite {
namespace wasm {

std::string abstractInstr(const Instr &I) { return opcodeName(I.Op); }

std::string abstractFunctionSignature(const Function &Func) {
  std::string Signature;
  // Mnemonics average ~8 chars; reserve once to avoid rehash churn on the
  // dedup hot path.
  Signature.reserve(Func.Body.size() * 9);
  for (const Instr &I : Func.Body) {
    if (!Signature.empty())
      Signature.push_back(' ');
    Signature += abstractInstr(I);
  }
  return Signature;
}

uint64_t abstractFunctionHash(const Function &Func) {
  return hashString(abstractFunctionSignature(Func));
}

std::string moduleAbstraction(const Module &M) {
  std::string Abstraction;
  for (const Function &Func : M.Functions) {
    Abstraction += abstractFunctionSignature(Func);
    Abstraction.push_back('\n');
  }
  return Abstraction;
}

uint64_t approximateModuleSignature(const Module &M) {
  return hashString(moduleAbstraction(M));
}

} // namespace wasm
} // namespace snowwhite
