//===- wasm/writer.h - WebAssembly binary encoder --------------------------===//

#ifndef SNOWWHITE_WASM_WRITER_H
#define SNOWWHITE_WASM_WRITER_H

#include "wasm/module.h"

#include <cstdint>
#include <vector>

namespace snowwhite {
namespace wasm {

/// Serializes Module into the WebAssembly binary format (magic, version,
/// type/import/function/memory/export/code sections, then custom sections).
///
/// As a side effect, fills in Function::CodeOffset for every defined function
/// with the byte offset of its code entry in the returned buffer; DWARF
/// DW_AT_low_pc values produced by the frontend use the same anchor, which is
/// how functions are matched to their debug info.
std::vector<uint8_t> writeModule(Module &M);

/// Appends a single instruction's binary encoding (opcode + immediates) to
/// Out. Exposed for tests and for computing instruction sizes.
void writeInstr(const Instr &I, std::vector<uint8_t> &Out);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_WRITER_H
