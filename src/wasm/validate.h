//===- wasm/validate.h - WebAssembly function validation -------------------===//
//
// Type-checks function bodies per the WebAssembly 1.0 validation algorithm
// (value stack + control frame stack, with stack-polymorphic unreachable
// code). The synthetic frontend must only ever produce valid modules; tests
// assert this property over large generated corpora.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_WASM_VALIDATE_H
#define SNOWWHITE_WASM_VALIDATE_H

#include "support/result.h"
#include "wasm/module.h"

namespace snowwhite {
namespace wasm {

/// Validates the body of defined function DefinedIndex against its type,
/// locals, and the module context (types, imports, globals, memories).
Result<void> validateFunction(const Module &M, uint32_t DefinedIndex);

/// Validates every defined function plus basic index-space invariants
/// (type indices in range, export/import indices valid, global inits const).
Result<void> validateModule(const Module &M);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_VALIDATE_H
