#include "wasm/writer.h"

#include "support/leb128.h"

#include <cassert>

namespace snowwhite {
namespace wasm {

static void writeByte(uint8_t Byte, std::vector<uint8_t> &Out) {
  Out.push_back(Byte);
}

static void writeName(const std::string &Name, std::vector<uint8_t> &Out) {
  encodeULEB128(Name.size(), Out);
  Out.insert(Out.end(), Name.begin(), Name.end());
}

static void writeValType(ValType Type, std::vector<uint8_t> &Out) {
  writeByte(valTypeByte(Type), Out);
}

void writeInstr(const Instr &I, std::vector<uint8_t> &Out) {
  writeByte(opcodeByte(I.Op), Out);
  switch (opcodeImmKind(I.Op)) {
  case ImmKind::None:
    break;
  case ImmKind::BlockType:
    if (I.Imm0 == 0) {
      writeByte(0x40, Out); // Empty block type.
    } else {
      // Value-type bytes coincide with their SLEB encodings (-1..-4).
      writeValType(static_cast<ValType>(I.Imm0 - 1), Out);
    }
    break;
  case ImmKind::Label:
  case ImmKind::Func:
  case ImmKind::Local:
  case ImmKind::Global:
  case ImmKind::MemIdx:
    encodeULEB128(I.Imm0, Out);
    break;
  case ImmKind::BrTable:
    encodeULEB128(I.Table.size(), Out);
    for (uint32_t Target : I.Table)
      encodeULEB128(Target, Out);
    encodeULEB128(I.Imm0, Out); // Default label.
    break;
  case ImmKind::CallIndirect:
    encodeULEB128(I.Imm0, Out); // Type index.
    encodeULEB128(I.Imm1, Out); // Table index.
    break;
  case ImmKind::Mem:
    encodeULEB128(I.Imm1, Out); // Alignment exponent.
    encodeULEB128(I.Imm0, Out); // Byte offset.
    break;
  case ImmKind::I32:
    encodeSLEB128(static_cast<int32_t>(static_cast<int64_t>(I.Imm0)), Out);
    break;
  case ImmKind::I64:
    encodeSLEB128(static_cast<int64_t>(I.Imm0), Out);
    break;
  case ImmKind::F32:
    for (int Shift = 0; Shift < 32; Shift += 8)
      writeByte(static_cast<uint8_t>(I.Imm0 >> Shift), Out);
    break;
  case ImmKind::F64:
    for (int Shift = 0; Shift < 64; Shift += 8)
      writeByte(static_cast<uint8_t>(I.Imm0 >> Shift), Out);
    break;
  }
}

/// Appends a section header (id + payload size) followed by the payload.
static void writeSection(uint8_t Id, const std::vector<uint8_t> &Payload,
                         std::vector<uint8_t> &Out) {
  writeByte(Id, Out);
  encodeULEB128(Payload.size(), Out);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

std::vector<uint8_t> writeModule(Module &M) {
  std::vector<uint8_t> Out;
  // Magic and version. Reserve up front: sidesteps GCC 12's spurious
  // -Wstringop-overflow on the inlined grow-path memmove of insert-at-end
  // (the destination "size 0" it reports is the not-yet-grown allocation).
  Out.reserve(64);
  const uint8_t Header[] = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  Out.insert(Out.end(), std::begin(Header), std::end(Header));

  // Type section (1).
  if (!M.Types.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Types.size(), Payload);
    for (const FuncType &Type : M.Types) {
      writeByte(0x60, Payload);
      encodeULEB128(Type.Params.size(), Payload);
      for (ValType Param : Type.Params)
        writeValType(Param, Payload);
      encodeULEB128(Type.Results.size(), Payload);
      for (ValType ResultType : Type.Results)
        writeValType(ResultType, Payload);
    }
    writeSection(1, Payload, Out);
  }

  // Import section (2).
  if (!M.Imports.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Imports.size(), Payload);
    for (const FuncImport &Import : M.Imports) {
      writeName(Import.ModuleName, Payload);
      writeName(Import.FieldName, Payload);
      writeByte(0x00, Payload); // Import kind: function.
      encodeULEB128(Import.TypeIndex, Payload);
    }
    writeSection(2, Payload, Out);
  }

  // Function section (3).
  if (!M.Functions.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Functions.size(), Payload);
    for (const Function &Func : M.Functions)
      encodeULEB128(Func.TypeIndex, Payload);
    writeSection(3, Payload, Out);
  }

  // Memory section (5).
  if (!M.Memories.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Memories.size(), Payload);
    for (const MemoryDecl &Memory : M.Memories) {
      writeByte(Memory.HasMax ? 0x01 : 0x00, Payload);
      encodeULEB128(Memory.MinPages, Payload);
      if (Memory.HasMax)
        encodeULEB128(Memory.MaxPages, Payload);
    }
    writeSection(5, Payload, Out);
  }

  // Global section (6).
  if (!M.Globals.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Globals.size(), Payload);
    for (const GlobalDecl &Global : M.Globals) {
      writeValType(Global.Type, Payload);
      writeByte(Global.Mutable ? 0x01 : 0x00, Payload);
      writeInstr(Global.Init, Payload);
      writeByte(opcodeByte(Opcode::End), Payload);
    }
    writeSection(6, Payload, Out);
  }

  // Export section (7).
  if (!M.Exports.empty()) {
    std::vector<uint8_t> Payload;
    encodeULEB128(M.Exports.size(), Payload);
    for (const FuncExport &Export : M.Exports) {
      writeName(Export.Name, Payload);
      writeByte(0x00, Payload); // Export kind: function.
      encodeULEB128(Export.FuncIndex, Payload);
    }
    writeSection(7, Payload, Out);
  }

  // Code section (10). Bodies are serialized first so their sizes are known;
  // CodeOffsets are assigned relative to the final file during assembly.
  if (!M.Functions.empty()) {
    std::vector<std::vector<uint8_t>> Bodies;
    Bodies.reserve(M.Functions.size());
    for (const Function &Func : M.Functions) {
      std::vector<uint8_t> Body;
      encodeULEB128(Func.Locals.size(), Body);
      for (const LocalRun &Run : Func.Locals) {
        encodeULEB128(Run.Count, Body);
        writeValType(Run.Type, Body);
      }
      for (const Instr &I : Func.Body)
        writeInstr(I, Body);
      Bodies.push_back(std::move(Body));
    }

    std::vector<uint8_t> Payload;
    encodeULEB128(M.Functions.size(), Payload);
    // Compute where the payload will start in the file: current size + 1 byte
    // section id + size of the payload-size ULEB.
    size_t PayloadSize = Payload.size();
    for (const std::vector<uint8_t> &Body : Bodies)
      PayloadSize += encodedULEB128Size(Body.size()) + Body.size();
    size_t PayloadStart = Out.size() + 1 + encodedULEB128Size(PayloadSize);

    size_t Cursor = PayloadStart + Payload.size();
    for (size_t I = 0; I < Bodies.size(); ++I) {
      M.Functions[I].CodeOffset = Cursor;
      encodeULEB128(Bodies[I].size(), Payload);
      Payload.insert(Payload.end(), Bodies[I].begin(), Bodies[I].end());
      Cursor = PayloadStart + Payload.size();
    }
    assert(Payload.size() == PayloadSize && "payload size mismatch");
    writeSection(10, Payload, Out);
  }

  // Custom sections (0), after the code section like LLVM emits debug info.
  for (const CustomSection &Section : M.Customs) {
    std::vector<uint8_t> Payload;
    writeName(Section.Name, Payload);
    Payload.insert(Payload.end(), Section.Bytes.begin(), Section.Bytes.end());
    writeSection(0, Payload, Out);
  }

  return Out;
}

} // namespace wasm
} // namespace snowwhite
