//===- wasm/instr.h - WebAssembly instructions ----------------------------===//

#ifndef SNOWWHITE_WASM_INSTR_H
#define SNOWWHITE_WASM_INSTR_H

#include "wasm/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace wasm {

/// All opcodes from opcodes.def.
enum class Opcode : uint16_t {
#define WASM_OPCODE(Name, Wat, Byte, Imm) Name,
#include "wasm/opcodes.def"
};

/// How an opcode's immediates are encoded.
enum class ImmKind : uint8_t {
  None,         ///< No immediates.
  BlockType,    ///< block/loop/if result type.
  Label,        ///< A relative branch depth.
  BrTable,      ///< Vector of labels plus a default label.
  Func,         ///< A function index (call).
  CallIndirect, ///< Type index + table index.
  Local,        ///< A local index.
  Global,       ///< A global index.
  Mem,          ///< Memarg: alignment exponent + byte offset.
  MemIdx,       ///< Memory index (always 0 in MVP).
  I32,          ///< Signed 32-bit constant.
  I64,          ///< Signed 64-bit constant.
  F32,          ///< 32-bit float constant (bit pattern).
  F64,          ///< 64-bit float constant (bit pattern).
};

/// Number of opcodes in the table.
constexpr unsigned NumOpcodes = 0
#define WASM_OPCODE(Name, Wat, Byte, Imm) +1
#include "wasm/opcodes.def"
    ;

/// Returns the text-format mnemonic of Op, e.g. "i32.const".
const char *opcodeName(Opcode Op);

/// Returns the binary-format byte of Op.
uint8_t opcodeByte(Opcode Op);

/// Returns the immediate kind of Op.
ImmKind opcodeImmKind(Opcode Op);

/// Decodes an opcode byte. Returns false for bytes outside the table.
bool opcodeFromByte(uint8_t Byte, Opcode &Op);

/// One decoded instruction. Immediates are stored in Imm0/Imm1, interpreted
/// according to opcodeImmKind():
///   Label/Func/Local/Global: index in Imm0.
///   Mem: byte offset in Imm0, alignment exponent in Imm1.
///   CallIndirect: type index in Imm0, table index in Imm1.
///   I32/I64: sign-extended value in Imm0 (as two's complement).
///   F32/F64: IEEE bit pattern in Imm0.
///   BlockType: Imm0 == 0 for empty, else 1 + value-type enum in Imm0 - 1.
///   BrTable: targets in Table, default label in Imm0.
struct Instr {
  Opcode Op = Opcode::Nop;
  uint64_t Imm0 = 0;
  uint64_t Imm1 = 0;
  std::vector<uint32_t> Table; ///< Only used by br_table.

  Instr() = default;
  explicit Instr(Opcode O) : Op(O) {}
  Instr(Opcode O, uint64_t I0) : Op(O), Imm0(I0) {}
  Instr(Opcode O, uint64_t I0, uint64_t I1) : Op(O), Imm0(I0), Imm1(I1) {}

  bool operator==(const Instr &Other) const = default;

  /// Convenience constructors for common instruction shapes.
  static Instr i32Const(int32_t Value) {
    return Instr(Opcode::I32Const,
                 static_cast<uint64_t>(static_cast<int64_t>(Value)));
  }
  static Instr i64Const(int64_t Value) {
    return Instr(Opcode::I64Const, static_cast<uint64_t>(Value));
  }
  static Instr f32Const(float Value);
  static Instr f64Const(double Value);
  static Instr localGet(uint32_t Index) {
    return Instr(Opcode::LocalGet, Index);
  }
  static Instr localSet(uint32_t Index) {
    return Instr(Opcode::LocalSet, Index);
  }
  static Instr localTee(uint32_t Index) {
    return Instr(Opcode::LocalTee, Index);
  }
  static Instr globalGet(uint32_t Index) {
    return Instr(Opcode::GlobalGet, Index);
  }
  static Instr call(uint32_t FuncIndex) {
    return Instr(Opcode::Call, FuncIndex);
  }
  static Instr load(Opcode LoadOp, uint32_t Offset, uint32_t AlignExp = 0) {
    return Instr(LoadOp, Offset, AlignExp);
  }
  static Instr store(Opcode StoreOp, uint32_t Offset, uint32_t AlignExp = 0) {
    return Instr(StoreOp, Offset, AlignExp);
  }
  static Instr block(BlockType Type = BlockType::empty());
  static Instr loop(BlockType Type = BlockType::empty());
  static Instr ifOp(BlockType Type = BlockType::empty());
  static Instr br(uint32_t Depth) { return Instr(Opcode::Br, Depth); }
  static Instr brIf(uint32_t Depth) { return Instr(Opcode::BrIf, Depth); }

  /// Returns the f32 constant value; Op must be F32Const.
  float f32Value() const;
  /// Returns the f64 constant value; Op must be F64Const.
  double f64Value() const;
  /// Returns the i32 constant value; Op must be I32Const.
  int32_t i32Value() const;
  /// Decodes a BlockType immediate; Op must be Block/Loop/If.
  BlockType blockType() const;

  /// True for local.get/local.set/local.tee.
  bool isLocalOp() const {
    return Op == Opcode::LocalGet || Op == Opcode::LocalSet ||
           Op == Opcode::LocalTee;
  }
};

/// Packs a BlockType into the Imm0 representation described on Instr.
uint64_t encodeBlockTypeImm(BlockType Type);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_INSTR_H
