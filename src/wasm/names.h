//===- wasm/names.h - The "name" custom section ----------------------------===//
//
// The WebAssembly "name" custom section (spec appendix) carries debug names
// for functions. Unlike the DWARF sections, toolchains often keep it even in
// otherwise-stripped binaries, so a reverse engineer frequently has function
// names but no types — exactly the scenario SNOWWHITE targets. Only the
// function-names subsection (id 1) is implemented.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_WASM_NAMES_H
#define SNOWWHITE_WASM_NAMES_H

#include "support/result.h"
#include "wasm/module.h"

#include <map>
#include <string>

namespace snowwhite {
namespace wasm {

/// Function-index-space index -> name.
using FunctionNameMap = std::map<uint32_t, std::string>;

/// Encodes Names as a "name" custom section and appends it to M (replacing
/// any existing one).
void attachNameSection(Module &M, const FunctionNameMap &Names);

/// Parses M's "name" custom section. Errors if absent or malformed.
Result<FunctionNameMap> extractNameSection(const Module &M);

/// The name of defined function DefinedIndex: from the name section if
/// present, else from an export, else "func[N]".
std::string functionDisplayName(const Module &M, uint32_t DefinedIndex);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_NAMES_H
