#include "wasm/names.h"

#include "support/leb128.h"

namespace snowwhite {
namespace wasm {

void attachNameSection(Module &M, const FunctionNameMap &Names) {
  // Drop any existing name section first.
  std::vector<CustomSection> Kept;
  for (CustomSection &Section : M.Customs)
    if (Section.Name != "name")
      Kept.push_back(std::move(Section));
  M.Customs = std::move(Kept);

  // Subsection 1: function names, a vec of (funcidx, name) sorted by index.
  std::vector<uint8_t> Assoc;
  encodeULEB128(Names.size(), Assoc);
  for (const auto &[Index, Name] : Names) {
    encodeULEB128(Index, Assoc);
    encodeULEB128(Name.size(), Assoc);
    Assoc.insert(Assoc.end(), Name.begin(), Name.end());
  }
  std::vector<uint8_t> Payload;
  Payload.push_back(0x01); // Subsection id: function names.
  encodeULEB128(Assoc.size(), Payload);
  Payload.insert(Payload.end(), Assoc.begin(), Assoc.end());
  M.Customs.push_back({"name", std::move(Payload)});
}

Result<FunctionNameMap> extractNameSection(const Module &M) {
  const CustomSection *Section = M.findCustom("name");
  if (!Section)
    return Error("no name section");
  const std::vector<uint8_t> &Bytes = Section->Bytes;
  size_t Offset = 0;
  FunctionNameMap Names;
  while (Offset < Bytes.size()) {
    uint8_t SubsectionId = Bytes[Offset++];
    uint64_t Size;
    if (!decodeULEB128(Bytes, Offset, Size))
      return Error("truncated name subsection size");
    if (Offset + Size > Bytes.size())
      return Error("name subsection extends past section");
    size_t End = Offset + static_cast<size_t>(Size);
    if (SubsectionId != 0x01) {
      Offset = End; // Skip module/local/other name subsections.
      continue;
    }
    uint64_t Count;
    if (!decodeULEB128(Bytes, Offset, Count))
      return Error("truncated name count");
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t FuncIndex, NameSize;
      if (!decodeULEB128(Bytes, Offset, FuncIndex) ||
          !decodeULEB128(Bytes, Offset, NameSize))
        return Error("truncated name assoc");
      if (Offset + NameSize > Bytes.size())
        return Error("name string extends past section");
      Names[static_cast<uint32_t>(FuncIndex)] =
          std::string(Bytes.begin() + Offset,
                      Bytes.begin() + Offset + NameSize);
      Offset += NameSize;
    }
    if (Offset != End)
      return Error("name subsection size mismatch");
  }
  return Names;
}

std::string functionDisplayName(const Module &M, uint32_t DefinedIndex) {
  uint32_t SpaceIndex = M.functionSpaceIndex(DefinedIndex);
  Result<FunctionNameMap> Names = extractNameSection(M);
  if (Names.isOk()) {
    auto It = Names->find(SpaceIndex);
    if (It != Names->end())
      return It->second;
  }
  for (const FuncExport &Export : M.Exports)
    if (Export.FuncIndex == SpaceIndex)
      return Export.Name;
  return "func[" + std::to_string(SpaceIndex) + "]";
}

} // namespace wasm
} // namespace snowwhite
