//===- wasm/types.h - WebAssembly value and function types ----------------===//

#ifndef SNOWWHITE_WASM_TYPES_H
#define SNOWWHITE_WASM_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace wasm {

/// The four WebAssembly 1.0 value types. The binary encoding byte of each
/// type is given by valTypeByte().
enum class ValType : uint8_t {
  I32,
  I64,
  F32,
  F64,
};

/// Returns the binary-format byte for Type (0x7f..0x7c).
uint8_t valTypeByte(ValType Type);

/// Decodes a value-type byte. Returns false for bytes outside the MVP set.
bool valTypeFromByte(uint8_t Byte, ValType &Type);

/// Returns the canonical text-format spelling, e.g. "i32".
const char *valTypeName(ValType Type);

/// A function type: parameter list and zero-or-one results (MVP).
struct FuncType {
  std::vector<ValType> Params;
  std::vector<ValType> Results;

  bool operator==(const FuncType &Other) const = default;
};

/// The block-type immediate of block/loop/if: either empty (no result) or a
/// single value type.
struct BlockType {
  bool HasResult = false;
  ValType Result = ValType::I32;

  static BlockType empty() { return BlockType{}; }
  static BlockType value(ValType Type) { return BlockType{true, Type}; }

  bool operator==(const BlockType &Other) const = default;
};

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_TYPES_H
