#include "wasm/validate.h"

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace snowwhite {
namespace wasm {

namespace {

/// Control nesting cap. The reader already bounds body size by section
/// bytes, but a body of back-to-back `block` opcodes would still grow the
/// frame stack linearly with input size; cap it so hostile inputs get a
/// structured LimitExceeded instead of unbounded memory growth.
constexpr size_t MaxControlNesting = 1024;

/// A value-stack entry: a concrete type, or "unknown" below an unreachable
/// point (stack-polymorphic).
struct StackValue {
  bool Known = true;
  ValType Type = ValType::I32;
};

/// One control frame (function body, block, loop, if, else).
struct ControlFrame {
  Opcode Kind = Opcode::Block;   ///< Block, Loop, If, or Else.
  std::vector<ValType> Results;  ///< End types (0 or 1 in MVP).
  size_t StackHeight = 0;        ///< Value stack height at entry.
  bool Unreachable = false;
};

class Validator {
public:
  Validator(const Module &Mod, const Function &F, const FuncType &FT)
      : M(Mod), Func(F), Type(FT) {}

  Result<void> run() {
    Locals = Type.Params;
    for (ValType Local : Func.flattenedLocals())
      Locals.push_back(Local);

    // The implicit function frame.
    pushFrame(Opcode::Block, Type.Results);

    for (size_t Index = 0; Index < Func.Body.size(); ++Index) {
      const Instr &I = Func.Body[Index];
      Result<void> Status = step(I, Index);
      if (Status.isErr())
        return Status;
    }
    if (!Frames.empty())
      return fail("function body missing end instruction(s)");
    return {};
  }

private:
  Result<void> fail(const std::string &Message) {
    return Error(ErrorCode::Malformed, "validation: " + Message);
  }

  Result<void> failLimit(const std::string &Message) {
    return Error(ErrorCode::LimitExceeded, "validation: " + Message);
  }

  void pushFrame(Opcode Kind, std::vector<ValType> Results) {
    Frames.push_back(
        ControlFrame{Kind, std::move(Results), Stack.size(), false});
  }

  void pushValue(ValType T) { Stack.push_back({true, T}); }
  void pushUnknown() { Stack.push_back({false, ValType::I32}); }

  /// Pops a value expecting type T; unknown values match anything.
  bool popExpect(ValType T) {
    ControlFrame &Frame = Frames.back();
    if (Stack.size() == Frame.StackHeight) {
      // Below the frame base: only legal in unreachable code.
      return Frame.Unreachable;
    }
    StackValue Value = Stack.back();
    Stack.pop_back();
    return !Value.Known || Value.Type == T;
  }

  /// Pops any value; returns nullopt if polymorphic or empty-unreachable.
  std::optional<StackValue> popAny() {
    ControlFrame &Frame = Frames.back();
    if (Stack.size() == Frame.StackHeight) {
      if (Frame.Unreachable)
        return StackValue{false, ValType::I32};
      return std::nullopt;
    }
    StackValue Value = Stack.back();
    Stack.pop_back();
    return Value;
  }

  /// Types a branch to relative Depth: loop labels take no values (MVP
  /// without multi-value blocks for loops' entry), others take the frame's
  /// result types.
  const std::vector<ValType> *labelTypes(uint64_t Depth,
                                         std::vector<ValType> &LoopEmpty) {
    if (Depth >= Frames.size())
      return nullptr;
    ControlFrame &Frame = Frames[Frames.size() - 1 - Depth];
    if (Frame.Kind == Opcode::Loop) {
      LoopEmpty.clear();
      return &LoopEmpty;
    }
    return &Frame.Results;
  }

  void markUnreachable() {
    ControlFrame &Frame = Frames.back();
    Stack.resize(Frame.StackHeight);
    Frame.Unreachable = true;
  }

  ValType localType(uint64_t Index) const {
    return Locals[static_cast<size_t>(Index)];
  }

  /// Natural access width (bytes) of a load/store opcode, for the memarg
  /// alignment rule: the alignment exponent must not exceed log2(width).
  /// Found by the analysis-subsystem audit: previously unchecked.
  static unsigned accessBytes(Opcode Op) {
    switch (Op) {
    case Opcode::I32Load8S:
    case Opcode::I32Load8U:
    case Opcode::I64Load8S:
    case Opcode::I64Load8U:
    case Opcode::I32Store8:
    case Opcode::I64Store8:
      return 1;
    case Opcode::I32Load16S:
    case Opcode::I32Load16U:
    case Opcode::I64Load16S:
    case Opcode::I64Load16U:
    case Opcode::I32Store16:
    case Opcode::I64Store16:
      return 2;
    case Opcode::I64Load:
    case Opcode::F64Load:
    case Opcode::I64Store:
    case Opcode::F64Store:
      return 8;
    default: // 32-bit loads/stores and i64.load32/store32.
      return 4;
    }
  }

  Result<void> checkAlignment(const Instr &I) {
    unsigned MaxExp = 0;
    for (unsigned Bytes = accessBytes(I.Op); Bytes > 1; Bytes >>= 1)
      ++MaxExp;
    if (I.Imm1 > MaxExp)
      return fail("alignment exceeds natural alignment");
    return {};
  }

  Result<void> checkLoad(const Instr &I, ValType Pushed) {
    if (M.Memories.empty())
      return fail("memory access without memory");
    if (Result<void> Status = checkAlignment(I); Status.isErr())
      return Status;
    if (!popExpect(ValType::I32))
      return fail("load address must be i32");
    pushValue(Pushed);
    return {};
  }

  Result<void> checkStore(const Instr &I, ValType Stored) {
    if (M.Memories.empty())
      return fail("memory access without memory");
    if (Result<void> Status = checkAlignment(I); Status.isErr())
      return Status;
    if (!popExpect(Stored))
      return fail("store value type mismatch");
    if (!popExpect(ValType::I32))
      return fail("store address must be i32");
    return {};
  }

  Result<void> checkUnary(ValType In, ValType Out) {
    if (!popExpect(In))
      return fail("unary operand type mismatch");
    pushValue(Out);
    return {};
  }

  Result<void> checkBinary(ValType In, ValType Out) {
    if (!popExpect(In) || !popExpect(In))
      return fail("binary operand type mismatch");
    pushValue(Out);
    return {};
  }

  Result<void> step(const Instr &I, size_t Index);

  const Module &M;
  const Function &Func;
  const FuncType &Type;
  std::vector<ValType> Locals;
  std::vector<StackValue> Stack;
  std::vector<ControlFrame> Frames;
};

Result<void> Validator::step(const Instr &I, size_t Index) {
  // The final `end` pops the implicit function frame; nothing may follow it.
  // Every helper below indexes Frames.back(), so this guard is load-bearing.
  if (Frames.empty())
    return fail("instruction after function body end");

  uint8_t Byte = opcodeByte(I.Op);

  // Numeric instruction groups by opcode byte range.
  if (Byte == 0x45) // i32.eqz
    return checkUnary(ValType::I32, ValType::I32);
  if (Byte >= 0x46 && Byte <= 0x4f)
    return checkBinary(ValType::I32, ValType::I32);
  if (Byte == 0x50) // i64.eqz
    return checkUnary(ValType::I64, ValType::I32);
  if (Byte >= 0x51 && Byte <= 0x5a)
    return checkBinary(ValType::I64, ValType::I32);
  if (Byte >= 0x5b && Byte <= 0x60)
    return checkBinary(ValType::F32, ValType::I32);
  if (Byte >= 0x61 && Byte <= 0x66)
    return checkBinary(ValType::F64, ValType::I32);
  if (Byte >= 0x67 && Byte <= 0x69)
    return checkUnary(ValType::I32, ValType::I32);
  if (Byte >= 0x6a && Byte <= 0x78)
    return checkBinary(ValType::I32, ValType::I32);
  if (Byte >= 0x79 && Byte <= 0x7b)
    return checkUnary(ValType::I64, ValType::I64);
  if (Byte >= 0x7c && Byte <= 0x8a)
    return checkBinary(ValType::I64, ValType::I64);
  if (Byte >= 0x8b && Byte <= 0x91)
    return checkUnary(ValType::F32, ValType::F32);
  if (Byte >= 0x92 && Byte <= 0x98)
    return checkBinary(ValType::F32, ValType::F32);
  if (Byte >= 0x99 && Byte <= 0x9f)
    return checkUnary(ValType::F64, ValType::F64);
  if (Byte >= 0xa0 && Byte <= 0xa6)
    return checkBinary(ValType::F64, ValType::F64);

  switch (I.Op) {
  case Opcode::Unreachable:
    markUnreachable();
    return {};
  case Opcode::Nop:
    return {};

  case Opcode::Block:
  case Opcode::Loop: {
    if (Frames.size() >= MaxControlNesting)
      return failLimit("control nesting deeper than " +
                       std::to_string(MaxControlNesting));
    BlockType BT = I.blockType();
    std::vector<ValType> Results;
    if (BT.HasResult)
      Results.push_back(BT.Result);
    pushFrame(I.Op, std::move(Results));
    return {};
  }
  case Opcode::If: {
    if (Frames.size() >= MaxControlNesting)
      return failLimit("control nesting deeper than " +
                       std::to_string(MaxControlNesting));
    if (!popExpect(ValType::I32))
      return fail("if condition must be i32");
    BlockType BT = I.blockType();
    std::vector<ValType> Results;
    if (BT.HasResult)
      Results.push_back(BT.Result);
    pushFrame(Opcode::If, std::move(Results));
    return {};
  }
  case Opcode::Else: {
    if (Frames.empty() || Frames.back().Kind != Opcode::If)
      return fail("else without if");
    ControlFrame Frame = Frames.back();
    // The then-branch must produce the frame results.
    for (auto It = Frame.Results.rbegin(); It != Frame.Results.rend(); ++It)
      if (!popExpect(*It))
        return fail("then-branch result mismatch");
    if (Stack.size() != Frame.StackHeight && !Frame.Unreachable)
      return fail("then-branch leaves extra values");
    Frames.pop_back();
    Stack.resize(Frame.StackHeight);
    pushFrame(Opcode::Else, Frame.Results);
    return {};
  }
  case Opcode::End: {
    if (Frames.empty())
      return fail("end without open frame");
    ControlFrame Frame = Frames.back();
    if (Frame.Kind == Opcode::If && !Frame.Results.empty())
      return fail("if with result requires else");
    for (auto It = Frame.Results.rbegin(); It != Frame.Results.rend(); ++It)
      if (!popExpect(*It))
        return fail("block result mismatch at end");
    if (Stack.size() != Frame.StackHeight && !Frame.Unreachable)
      return fail("extra values on stack at end");
    Frames.pop_back();
    Stack.resize(Frame.StackHeight);
    for (ValType ResultType : Frame.Results)
      pushValue(ResultType);
    return {};
  }
  case Opcode::Br: {
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *Types = labelTypes(I.Imm0, LoopEmpty);
    if (!Types)
      return fail("br depth out of range");
    for (auto It = Types->rbegin(); It != Types->rend(); ++It)
      if (!popExpect(*It))
        return fail("br operand mismatch");
    markUnreachable();
    return {};
  }
  case Opcode::BrIf: {
    if (!popExpect(ValType::I32))
      return fail("br_if condition must be i32");
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *Types = labelTypes(I.Imm0, LoopEmpty);
    if (!Types)
      return fail("br_if depth out of range");
    for (auto It = Types->rbegin(); It != Types->rend(); ++It)
      if (!popExpect(*It))
        return fail("br_if operand mismatch");
    for (ValType T : *Types)
      pushValue(T);
    return {};
  }
  case Opcode::BrTable: {
    if (!popExpect(ValType::I32))
      return fail("br_table index must be i32");
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *DefaultTypes = labelTypes(I.Imm0, LoopEmpty);
    if (!DefaultTypes)
      return fail("br_table default depth out of range");
    for (uint32_t Target : I.Table) {
      std::vector<ValType> LoopEmpty2;
      const std::vector<ValType> *Types = labelTypes(Target, LoopEmpty2);
      if (!Types || *Types != *DefaultTypes)
        return fail("br_table target arity mismatch");
    }
    for (auto It = DefaultTypes->rbegin(); It != DefaultTypes->rend(); ++It)
      if (!popExpect(*It))
        return fail("br_table operand mismatch");
    markUnreachable();
    return {};
  }
  case Opcode::Return: {
    for (auto It = Type.Results.rbegin(); It != Type.Results.rend(); ++It)
      if (!popExpect(*It))
        return fail("return value mismatch");
    markUnreachable();
    return {};
  }
  case Opcode::Call: {
    uint64_t SpaceIndex = I.Imm0;
    uint32_t TypeIndex;
    if (SpaceIndex < M.Imports.size()) {
      TypeIndex = M.Imports[static_cast<size_t>(SpaceIndex)].TypeIndex;
    } else {
      uint64_t Defined = SpaceIndex - M.Imports.size();
      if (Defined >= M.Functions.size())
        return fail("call index out of range");
      TypeIndex = M.Functions[static_cast<size_t>(Defined)].TypeIndex;
    }
    if (TypeIndex >= M.Types.size())
      return fail("call type index out of range");
    const FuncType &Callee = M.Types[TypeIndex];
    for (auto It = Callee.Params.rbegin(); It != Callee.Params.rend(); ++It)
      if (!popExpect(*It))
        return fail("call argument mismatch");
    for (ValType ResultType : Callee.Results)
      pushValue(ResultType);
    return {};
  }
  case Opcode::CallIndirect: {
    if (I.Imm0 >= M.Types.size())
      return fail("call_indirect type index out of range");
    if (!popExpect(ValType::I32))
      return fail("call_indirect table index must be i32");
    const FuncType &Callee = M.Types[static_cast<size_t>(I.Imm0)];
    for (auto It = Callee.Params.rbegin(); It != Callee.Params.rend(); ++It)
      if (!popExpect(*It))
        return fail("call_indirect argument mismatch");
    for (ValType ResultType : Callee.Results)
      pushValue(ResultType);
    return {};
  }

  case Opcode::Drop:
    if (!popAny())
      return fail("drop on empty stack");
    return {};
  case Opcode::Select: {
    if (!popExpect(ValType::I32))
      return fail("select condition must be i32");
    std::optional<StackValue> B = popAny();
    std::optional<StackValue> A = popAny();
    if (!A || !B)
      return fail("select on empty stack");
    if (A->Known && B->Known && A->Type != B->Type)
      return fail("select operand types differ");
    if (A->Known)
      pushValue(A->Type);
    else if (B->Known)
      pushValue(B->Type);
    else
      pushUnknown();
    return {};
  }

  case Opcode::LocalGet:
    if (I.Imm0 >= Locals.size())
      return fail("local.get index out of range");
    pushValue(localType(I.Imm0));
    return {};
  case Opcode::LocalSet:
    if (I.Imm0 >= Locals.size())
      return fail("local.set index out of range");
    if (!popExpect(localType(I.Imm0)))
      return fail("local.set type mismatch");
    return {};
  case Opcode::LocalTee:
    if (I.Imm0 >= Locals.size())
      return fail("local.tee index out of range");
    if (!popExpect(localType(I.Imm0)))
      return fail("local.tee type mismatch");
    pushValue(localType(I.Imm0));
    return {};
  case Opcode::GlobalGet:
    if (I.Imm0 >= M.Globals.size())
      return fail("global.get index out of range");
    pushValue(M.Globals[static_cast<size_t>(I.Imm0)].Type);
    return {};
  case Opcode::GlobalSet: {
    if (I.Imm0 >= M.Globals.size())
      return fail("global.set index out of range");
    const GlobalDecl &Global = M.Globals[static_cast<size_t>(I.Imm0)];
    if (!Global.Mutable)
      return fail("global.set of immutable global");
    if (!popExpect(Global.Type))
      return fail("global.set type mismatch");
    return {};
  }

  case Opcode::I32Load:
  case Opcode::I32Load8S:
  case Opcode::I32Load8U:
  case Opcode::I32Load16S:
  case Opcode::I32Load16U:
    return checkLoad(I, ValType::I32);
  case Opcode::I64Load:
  case Opcode::I64Load8S:
  case Opcode::I64Load8U:
  case Opcode::I64Load16S:
  case Opcode::I64Load16U:
  case Opcode::I64Load32S:
  case Opcode::I64Load32U:
    return checkLoad(I, ValType::I64);
  case Opcode::F32Load:
    return checkLoad(I, ValType::F32);
  case Opcode::F64Load:
    return checkLoad(I, ValType::F64);

  case Opcode::I32Store:
  case Opcode::I32Store8:
  case Opcode::I32Store16:
    return checkStore(I, ValType::I32);
  case Opcode::I64Store:
  case Opcode::I64Store8:
  case Opcode::I64Store16:
  case Opcode::I64Store32:
    return checkStore(I, ValType::I64);
  case Opcode::F32Store:
    return checkStore(I, ValType::F32);
  case Opcode::F64Store:
    return checkStore(I, ValType::F64);

  case Opcode::MemorySize:
    if (M.Memories.empty())
      return fail("memory.size without memory");
    pushValue(ValType::I32);
    return {};
  case Opcode::MemoryGrow:
    if (M.Memories.empty())
      return fail("memory.grow without memory");
    return checkUnary(ValType::I32, ValType::I32);

  case Opcode::I32Const:
    pushValue(ValType::I32);
    return {};
  case Opcode::I64Const:
    pushValue(ValType::I64);
    return {};
  case Opcode::F32Const:
    pushValue(ValType::F32);
    return {};
  case Opcode::F64Const:
    pushValue(ValType::F64);
    return {};

  // Conversions.
  case Opcode::I32WrapI64:
    return checkUnary(ValType::I64, ValType::I32);
  case Opcode::I32TruncF32S:
  case Opcode::I32TruncF32U:
    return checkUnary(ValType::F32, ValType::I32);
  case Opcode::I32TruncF64S:
  case Opcode::I32TruncF64U:
    return checkUnary(ValType::F64, ValType::I32);
  case Opcode::I64ExtendI32S:
  case Opcode::I64ExtendI32U:
    return checkUnary(ValType::I32, ValType::I64);
  case Opcode::I64TruncF32S:
  case Opcode::I64TruncF32U:
    return checkUnary(ValType::F32, ValType::I64);
  case Opcode::I64TruncF64S:
  case Opcode::I64TruncF64U:
    return checkUnary(ValType::F64, ValType::I64);
  case Opcode::F32ConvertI32S:
  case Opcode::F32ConvertI32U:
    return checkUnary(ValType::I32, ValType::F32);
  case Opcode::F32ConvertI64S:
  case Opcode::F32ConvertI64U:
    return checkUnary(ValType::I64, ValType::F32);
  case Opcode::F32DemoteF64:
    return checkUnary(ValType::F64, ValType::F32);
  case Opcode::F64ConvertI32S:
  case Opcode::F64ConvertI32U:
    return checkUnary(ValType::I32, ValType::F64);
  case Opcode::F64ConvertI64S:
  case Opcode::F64ConvertI64U:
    return checkUnary(ValType::I64, ValType::F64);
  case Opcode::F64PromoteF32:
    return checkUnary(ValType::F32, ValType::F64);
  case Opcode::I32ReinterpretF32:
    return checkUnary(ValType::F32, ValType::I32);
  case Opcode::I64ReinterpretF64:
    return checkUnary(ValType::F64, ValType::I64);
  case Opcode::F32ReinterpretI32:
    return checkUnary(ValType::I32, ValType::F32);
  case Opcode::F64ReinterpretI64:
    return checkUnary(ValType::I64, ValType::F64);
  case Opcode::I32Extend8S:
  case Opcode::I32Extend16S:
    return checkUnary(ValType::I32, ValType::I32);
  case Opcode::I64Extend8S:
  case Opcode::I64Extend16S:
  case Opcode::I64Extend32S:
    return checkUnary(ValType::I64, ValType::I64);

  default:
    return fail(std::string("unhandled opcode ") + opcodeName(I.Op) +
                " at instruction " + std::to_string(Index));
  }
}

} // namespace

Result<void> validateFunction(const Module &M, uint32_t DefinedIndex) {
  if (DefinedIndex >= M.Functions.size())
    return Error(ErrorCode::Malformed, "validation: function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Error(ErrorCode::Malformed,
                 "validation: function type index out of range");
  Validator V(M, Func, M.Types[Func.TypeIndex]);
  return V.run();
}

Result<void> validateModule(const Module &M) {
  for (const FuncImport &Import : M.Imports)
    if (Import.TypeIndex >= M.Types.size())
      return Error(ErrorCode::Malformed,
                   "validation: import type index out of range");
  {
    // Export names must be unique within the module (spec 3.4.10). Found by
    // the analysis-subsystem audit: previously unchecked.
    std::set<std::string_view> ExportNames;
    for (const FuncExport &Export : M.Exports) {
      if (Export.FuncIndex >= M.Imports.size() + M.Functions.size())
        return Error(ErrorCode::Malformed,
                     "validation: export function index out of range");
      if (!ExportNames.insert(Export.Name).second)
        return Error(ErrorCode::Malformed,
                     "validation: duplicate export name '" + Export.Name +
                         "'");
    }
  }
  for (const MemoryDecl &Memory : M.Memories)
    // Spec 3.2.5: a limit's minimum must not exceed its maximum. Found by
    // the analysis-subsystem audit: previously unchecked.
    if (Memory.HasMax && Memory.MinPages > Memory.MaxPages)
      return Error(ErrorCode::Malformed,
                   "validation: memory minimum exceeds maximum");
  for (const GlobalDecl &Global : M.Globals) {
    ImmKind Imm = opcodeImmKind(Global.Init.Op);
    ValType InitType;
    switch (Imm) {
    case ImmKind::I32:
      InitType = ValType::I32;
      break;
    case ImmKind::I64:
      InitType = ValType::I64;
      break;
    case ImmKind::F32:
      InitType = ValType::F32;
      break;
    case ImmKind::F64:
      InitType = ValType::F64;
      break;
    default:
      return Error(ErrorCode::Malformed,
                   "validation: global initializer must be a constant");
    }
    // Spec 3.4.4: the initializer's type must match the declared type.
    // Found by the analysis-subsystem audit: previously unchecked.
    if (InitType != Global.Type)
      return Error(ErrorCode::Malformed,
                   "validation: global initializer type mismatch");
  }
  for (uint32_t I = 0; I < M.Functions.size(); ++I) {
    Result<void> Status = validateFunction(M, I);
    if (Status.isErr())
      return Status.withContext("function " + std::to_string(I));
  }
  return {};
}

} // namespace wasm
} // namespace snowwhite
