//===- wasm/abstract.h - Instruction abstraction for dedup signatures -----===//
//
// Near-duplicate binaries (same code, different embedded strings/offsets)
// are detected via an approximate signature (paper §5): every instruction is
// abstracted to its bare mnemonic (local.get $0 -> local.get, i32.load
// offset=8 -> i32.load), each function body is hashed, the function hashes
// are concatenated in order, and the concatenation is hashed again.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_WASM_ABSTRACT_H
#define SNOWWHITE_WASM_ABSTRACT_H

#include "wasm/module.h"

#include <cstdint>
#include <string>

namespace snowwhite {
namespace wasm {

/// The abstraction of an instruction: its mnemonic with all immediates
/// removed.
std::string abstractInstr(const Instr &I);

/// Hash of a function's abstracted instruction sequence.
uint64_t abstractFunctionHash(const Function &Func);

/// Approximate whole-module signature: function hashes concatenated in order
/// (order matters), hashed again.
uint64_t approximateModuleSignature(const Module &M);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_ABSTRACT_H
