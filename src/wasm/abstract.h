//===- wasm/abstract.h - Instruction abstraction for dedup signatures -----===//
//
// Near-duplicate binaries (same code, different embedded strings/offsets)
// are detected via an approximate signature (paper §5): every instruction is
// abstracted to its bare mnemonic (local.get $0 -> local.get, i32.load
// offset=8 -> i32.load), each function body is hashed, the function hashes
// are concatenated in order, and the concatenation is hashed again.
//
// A 64-bit hash is NOT an identity: two distinct abstraction sequences can
// collide. Consumers that treat a signature as "same code" must keep the
// abstraction string alongside the hash and compare the strings byte-wise on
// hash match (see support/hash.h SignatureSet and model/serve_daemon.h
// PredictionCache). The string forms below exist so callers can do exactly
// that without re-deriving the textual abstraction themselves.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_WASM_ABSTRACT_H
#define SNOWWHITE_WASM_ABSTRACT_H

#include "wasm/module.h"

#include <cstdint>
#include <string>

namespace snowwhite {
namespace wasm {

/// The abstraction of an instruction: its mnemonic with all immediates
/// removed.
std::string abstractInstr(const Instr &I);

/// The abstraction of a whole function body: the abstracted instructions
/// joined with single spaces ("local.get i32.load i32.add end"). This is the
/// canonical collision-check key for abstractFunctionHash.
std::string abstractFunctionSignature(const Function &Func);

/// Hash of a function's abstracted instruction sequence. Defined as
/// hashString(abstractFunctionSignature(Func)), so the hash and its
/// collision-check key can never drift apart.
uint64_t abstractFunctionHash(const Function &Func);

/// The abstraction of a whole module: per-function signatures joined with
/// newlines, in function order. Canonical collision-check key for
/// approximateModuleSignature.
std::string moduleAbstraction(const Module &M);

/// Approximate whole-module signature: hash of moduleAbstraction(M). Order
/// of functions matters.
uint64_t approximateModuleSignature(const Module &M);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_ABSTRACT_H
