#include "wasm/text.h"

#include "wasm/writer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace snowwhite {
namespace wasm {

static std::string formatFloatConst(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%g", Value);
  return Buffer;
}

std::vector<std::string> instrTokens(const Instr &I,
                                     const TokenOptions &Options) {
  std::vector<std::string> Tokens;
  Tokens.emplace_back(opcodeName(I.Op));
  switch (opcodeImmKind(I.Op)) {
  case ImmKind::None:
    break;
  case ImmKind::BlockType: {
    BlockType Type = I.blockType();
    if (Type.HasResult)
      Tokens.push_back(std::string("(result ") + valTypeName(Type.Result) +
                       ")");
    break;
  }
  case ImmKind::Label:
    Tokens.push_back(std::to_string(I.Imm0));
    break;
  case ImmKind::BrTable:
    for (uint32_t Target : I.Table)
      Tokens.push_back(std::to_string(Target));
    Tokens.push_back(std::to_string(I.Imm0));
    break;
  case ImmKind::Func:
    if (!Options.OmitCallIndex)
      Tokens.push_back(std::to_string(I.Imm0));
    break;
  case ImmKind::CallIndirect:
    // The type index of an indirect call is a useful signature hint; keep it.
    Tokens.push_back("(type " + std::to_string(I.Imm0) + ")");
    break;
  case ImmKind::Local:
  case ImmKind::Global:
    Tokens.push_back(std::to_string(I.Imm0));
    break;
  case ImmKind::Mem:
    Tokens.push_back("offset=" + std::to_string(I.Imm0));
    if (!Options.OmitAlignment && I.Imm1 != 0)
      Tokens.push_back("align=" + std::to_string(uint64_t(1) << I.Imm1));
    break;
  case ImmKind::MemIdx:
    break;
  case ImmKind::I32:
    Tokens.push_back(std::to_string(static_cast<int64_t>(I.Imm0)));
    break;
  case ImmKind::I64:
    Tokens.push_back(std::to_string(static_cast<int64_t>(I.Imm0)));
    break;
  case ImmKind::F32:
    Tokens.push_back(formatFloatConst(I.f32Value()));
    break;
  case ImmKind::F64:
    Tokens.push_back(formatFloatConst(I.f64Value()));
    break;
  }
  return Tokens;
}

std::string instrToString(const Instr &I, const TokenOptions &Options) {
  std::vector<std::string> Tokens = instrTokens(I, Options);
  std::string Out;
  for (size_t T = 0; T < Tokens.size(); ++T) {
    if (T != 0)
      Out += ' ';
    Out += Tokens[T];
  }
  return Out;
}

std::string printFuncType(const FuncType &Type) {
  std::string Out = "(param";
  for (ValType Param : Type.Params) {
    Out += ' ';
    Out += valTypeName(Param);
  }
  Out += ") (result";
  for (ValType ResultType : Type.Results) {
    Out += ' ';
    Out += valTypeName(ResultType);
  }
  Out += ')';
  return Out;
}

std::string printFunction(const Module &M, uint32_t DefinedIndex) {
  assert(DefinedIndex < M.Functions.size() && "function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  std::ostringstream Out;
  Out << "function $" << M.functionSpaceIndex(DefinedIndex) << ":\n";
  Out << "  type " << printFuncType(M.functionType(DefinedIndex)) << "\n";
  if (!Func.Locals.empty()) {
    Out << "  locals";
    for (const LocalRun &Run : Func.Locals)
      Out << " " << Run.Count << "x" << valTypeName(Run.Type);
    Out << "\n";
  }

  TokenOptions Full;
  Full.OmitAlignment = false;
  Full.OmitCallIndex = false;
  int Indent = 1;
  uint64_t Offset = Func.CodeOffset;
  // Replay the encoding to recover per-instruction byte offsets.
  for (const Instr &I : Func.Body) {
    if (I.Op == Opcode::End || I.Op == Opcode::Else)
      Indent = Indent > 1 ? Indent - 1 : 1;
    char Location[32];
    std::snprintf(Location, sizeof(Location), "%06llx: ",
                  static_cast<unsigned long long>(Offset));
    Out << Location;
    for (int Level = 0; Level < Indent; ++Level)
      Out << "  ";
    Out << instrToString(I, Full) << "\n";
    if (I.Op == Opcode::Block || I.Op == Opcode::Loop || I.Op == Opcode::If ||
        I.Op == Opcode::Else)
      ++Indent;
    std::vector<uint8_t> Encoded;
    writeInstr(I, Encoded);
    Offset += Encoded.size();
  }
  return Out.str();
}

} // namespace wasm
} // namespace snowwhite
