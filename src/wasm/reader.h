//===- wasm/reader.h - WebAssembly binary decoder --------------------------===//

#ifndef SNOWWHITE_WASM_READER_H
#define SNOWWHITE_WASM_READER_H

#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <vector>

namespace snowwhite {
namespace wasm {

/// Decodes a WebAssembly binary into a Module. Static disassembly of
/// WebAssembly is well-specified (unlike x86); any structural violation is
/// reported as an error rather than guessed around. Function::CodeOffset is
/// set to the byte offset of each code entry, matching writeModule.
Result<Module> readModule(const std::vector<uint8_t> &Bytes);

/// Decodes a single instruction at Bytes[Offset], advancing Offset. Returns
/// false on malformed input. Exposed for tests.
bool readInstr(const std::vector<uint8_t> &Bytes, size_t &Offset, Instr &Out);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_READER_H
