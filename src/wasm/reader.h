//===- wasm/reader.h - WebAssembly binary decoder --------------------------===//

#ifndef SNOWWHITE_WASM_READER_H
#define SNOWWHITE_WASM_READER_H

#include "support/fault.h"
#include "support/io.h"
#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <vector>

namespace snowwhite {
namespace wasm {

/// Resource budgets for one streamed module decode. Counts inside a binary
/// are attacker-controlled; these caps bound what a single hostile file can
/// cost before it is quarantined with a typed error. Breaching a byte budget
/// is LimitExceeded; an expired watchdog Deadline is Timeout.
struct ReadLimits {
  /// Hard cap on one section's declared byte size.
  uint64_t MaxSectionBytes = 1ull << 30;
  /// Hard cap on the whole module's byte size (header + all sections).
  uint64_t MaxModuleBytes = 1ull << 31;
  /// Optional per-file stall watchdog, polled at section boundaries and on
  /// every window refill. Null = no deadline.
  fault::Deadline *Watchdog = nullptr;
};

/// Decodes a WebAssembly binary into a Module. Static disassembly of
/// WebAssembly is well-specified (unlike x86); any structural violation is
/// reported as an error rather than guessed around. Function::CodeOffset is
/// set to the byte offset of each code entry, matching writeModule.
/// Thin wrapper over readModuleStreamed with an in-memory source.
Result<Module> readModule(const std::vector<uint8_t> &Bytes);

/// Section-wise decoder over a pull-based byte stream. Only one section is
/// materialized at a time, and sections this subset does not decode (e.g.
/// data) are skipped chunk-by-chunk without ever being buffered, so peak
/// memory is bounded by the source's window plus the largest *decoded*
/// section — independent of total module size. Budget breaches surface as
/// LimitExceeded and an expired watchdog as Timeout; all other verdicts and
/// messages are identical to readModule on the same bytes.
Result<Module> readModuleStreamed(io::ByteSource &Source,
                                  const ReadLimits &Limits = {});

/// Decodes a single instruction at Bytes[Offset], advancing Offset. Returns
/// false on malformed input. Exposed for tests.
bool readInstr(const std::vector<uint8_t> &Bytes, size_t &Offset, Instr &Out);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_READER_H
