#include "wasm/reader.h"

#include "support/leb128.h"

#include <cassert>

namespace snowwhite {
namespace wasm {

namespace {

/// Bounded cursor over the input bytes with primitive readers. All readers
/// return false on truncation or malformed data.
class Cursor {
public:
  Cursor(const std::vector<uint8_t> &Bytes, size_t Offset, size_t End)
      : Bytes(Bytes), Offset(Offset), End(End) {
    assert(End <= Bytes.size() && "cursor end past buffer");
  }

  size_t offset() const { return Offset; }
  bool atEnd() const { return Offset >= End; }
  size_t remaining() const { return End - Offset; }

  bool readByte(uint8_t &Out) {
    if (Offset >= End)
      return false;
    Out = Bytes[Offset++];
    return true;
  }

  bool readU32(uint32_t &Out) {
    uint64_t Wide;
    if (!readU64(Wide) || Wide > UINT32_MAX)
      return false;
    Out = static_cast<uint32_t>(Wide);
    return true;
  }

  bool readU64(uint64_t &Out) {
    size_t Local = Offset;
    if (!decodeULEB128(Bytes, Local, Out) || Local > End)
      return false;
    Offset = Local;
    return true;
  }

  bool readS64(int64_t &Out) {
    size_t Local = Offset;
    if (!decodeSLEB128(Bytes, Local, Out) || Local > End)
      return false;
    Offset = Local;
    return true;
  }

  bool readName(std::string &Out) {
    uint32_t Size;
    if (!readU32(Size) || remaining() < Size)
      return false;
    Out.assign(Bytes.begin() + Offset, Bytes.begin() + Offset + Size);
    Offset += Size;
    return true;
  }

  bool readValType(ValType &Out) {
    uint8_t Byte;
    return readByte(Byte) && valTypeFromByte(Byte, Out);
  }

  bool skip(size_t Count) {
    if (remaining() < Count)
      return false;
    Offset += Count;
    return true;
  }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Offset;
  size_t End;
};

bool readInstrAt(const std::vector<uint8_t> &Bytes, Cursor &C, Instr &Out) {
  uint8_t Byte;
  if (!C.readByte(Byte))
    return false;
  Opcode Op;
  if (!opcodeFromByte(Byte, Op))
    return false;
  Out = Instr(Op);
  Out.Table.clear();
  switch (opcodeImmKind(Op)) {
  case ImmKind::None:
    return true;
  case ImmKind::BlockType: {
    uint8_t TypeByte;
    if (!C.readByte(TypeByte))
      return false;
    if (TypeByte == 0x40) {
      Out.Imm0 = 0;
      return true;
    }
    ValType Type;
    if (!valTypeFromByte(TypeByte, Type))
      return false;
    Out.Imm0 = 1 + static_cast<uint64_t>(Type);
    return true;
  }
  case ImmKind::Label:
  case ImmKind::Func:
  case ImmKind::Local:
  case ImmKind::Global:
  case ImmKind::MemIdx:
    return C.readU64(Out.Imm0);
  case ImmKind::BrTable: {
    uint32_t Count;
    if (!C.readU32(Count))
      return false;
    Out.Table.resize(Count);
    for (uint32_t I = 0; I < Count; ++I)
      if (!C.readU32(Out.Table[I]))
        return false;
    return C.readU64(Out.Imm0);
  }
  case ImmKind::CallIndirect:
    return C.readU64(Out.Imm0) && C.readU64(Out.Imm1);
  case ImmKind::Mem:
    return C.readU64(Out.Imm1) && C.readU64(Out.Imm0);
  case ImmKind::I32: {
    int64_t Value;
    if (!C.readS64(Value))
      return false;
    if (Value < INT32_MIN || Value > INT32_MAX)
      return false;
    Out.Imm0 = static_cast<uint64_t>(Value);
    return true;
  }
  case ImmKind::I64: {
    int64_t Value;
    if (!C.readS64(Value))
      return false;
    Out.Imm0 = static_cast<uint64_t>(Value);
    return true;
  }
  case ImmKind::F32: {
    uint64_t Bits = 0;
    for (int Shift = 0; Shift < 32; Shift += 8) {
      uint8_t B;
      if (!C.readByte(B))
        return false;
      Bits |= static_cast<uint64_t>(B) << Shift;
    }
    Out.Imm0 = Bits;
    return true;
  }
  case ImmKind::F64: {
    uint64_t Bits = 0;
    for (int Shift = 0; Shift < 64; Shift += 8) {
      uint8_t B;
      if (!C.readByte(B))
        return false;
      Bits |= static_cast<uint64_t>(B) << Shift;
    }
    Out.Imm0 = Bits;
    return true;
  }
  }
  return false;
}

} // namespace

bool readInstr(const std::vector<uint8_t> &Bytes, size_t &Offset, Instr &Out) {
  Cursor C(Bytes, Offset, Bytes.size());
  if (!readInstrAt(Bytes, C, Out))
    return false;
  Offset = C.offset();
  return true;
}

Result<Module> readModule(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 8)
    return Error("module too small for header");
  const uint8_t Header[] = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  for (int I = 0; I < 8; ++I)
    if (Bytes[I] != Header[I])
      return Error("bad magic or version");

  Module M;
  size_t TopOffset = 8;
  while (TopOffset < Bytes.size()) {
    Cursor Top(Bytes, TopOffset, Bytes.size());
    uint8_t SectionId;
    if (!Top.readByte(SectionId))
      return Error("truncated section id");
    uint32_t SectionSize;
    if (!Top.readU32(SectionSize))
      return Error("truncated section size");
    if (Top.remaining() < SectionSize)
      return Error("section extends past end of file");
    size_t SectionStart = Top.offset();
    size_t SectionEnd = SectionStart + SectionSize;
    Cursor C(Bytes, SectionStart, SectionEnd);

    switch (SectionId) {
    case 0: { // Custom.
      CustomSection Custom;
      if (!C.readName(Custom.Name))
        return Error("bad custom section name");
      Custom.Bytes.assign(Bytes.begin() + C.offset(),
                          Bytes.begin() + SectionEnd);
      M.Customs.push_back(std::move(Custom));
      break;
    }
    case 1: { // Type.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad type count");
      for (uint32_t I = 0; I < Count; ++I) {
        uint8_t Form;
        if (!C.readByte(Form) || Form != 0x60)
          return Error("unsupported type form");
        FuncType Type;
        uint32_t NumParams;
        if (!C.readU32(NumParams))
          return Error("bad param count");
        Type.Params.resize(NumParams);
        for (uint32_t P = 0; P < NumParams; ++P)
          if (!C.readValType(Type.Params[P]))
            return Error("bad param type");
        uint32_t NumResults;
        if (!C.readU32(NumResults))
          return Error("bad result count");
        if (NumResults > 1)
          return Error("multi-value results not supported");
        Type.Results.resize(NumResults);
        for (uint32_t R = 0; R < NumResults; ++R)
          if (!C.readValType(Type.Results[R]))
            return Error("bad result type");
        M.Types.push_back(std::move(Type));
      }
      break;
    }
    case 2: { // Import.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad import count");
      for (uint32_t I = 0; I < Count; ++I) {
        FuncImport Import;
        if (!C.readName(Import.ModuleName) || !C.readName(Import.FieldName))
          return Error("bad import name");
        uint8_t Kind;
        if (!C.readByte(Kind))
          return Error("bad import kind");
        if (Kind != 0x00)
          return Error("only function imports supported");
        if (!C.readU32(Import.TypeIndex))
          return Error("bad import type index");
        M.Imports.push_back(std::move(Import));
      }
      break;
    }
    case 3: { // Function.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad function count");
      M.Functions.resize(Count);
      for (uint32_t I = 0; I < Count; ++I)
        if (!C.readU32(M.Functions[I].TypeIndex))
          return Error("bad function type index");
      break;
    }
    case 5: { // Memory.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad memory count");
      for (uint32_t I = 0; I < Count; ++I) {
        MemoryDecl Memory;
        uint8_t Flags;
        if (!C.readByte(Flags))
          return Error("bad memory flags");
        Memory.HasMax = Flags & 0x01;
        if (!C.readU32(Memory.MinPages))
          return Error("bad memory min");
        if (Memory.HasMax && !C.readU32(Memory.MaxPages))
          return Error("bad memory max");
        M.Memories.push_back(Memory);
      }
      break;
    }
    case 6: { // Global.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad global count");
      for (uint32_t I = 0; I < Count; ++I) {
        GlobalDecl Global;
        if (!C.readValType(Global.Type))
          return Error("bad global type");
        uint8_t Mutability;
        if (!C.readByte(Mutability))
          return Error("bad global mutability");
        Global.Mutable = Mutability != 0;
        if (!readInstrAt(Bytes, C, Global.Init))
          return Error("bad global init");
        Instr EndInstr;
        if (!readInstrAt(Bytes, C, EndInstr) || EndInstr.Op != Opcode::End)
          return Error("global init not terminated");
        M.Globals.push_back(Global);
      }
      break;
    }
    case 7: { // Export.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad export count");
      for (uint32_t I = 0; I < Count; ++I) {
        FuncExport Export;
        if (!C.readName(Export.Name))
          return Error("bad export name");
        uint8_t Kind;
        if (!C.readByte(Kind))
          return Error("bad export kind");
        if (Kind != 0x00)
          return Error("only function exports supported");
        if (!C.readU32(Export.FuncIndex))
          return Error("bad export func index");
        M.Exports.push_back(std::move(Export));
      }
      break;
    }
    case 10: { // Code.
      uint32_t Count;
      if (!C.readU32(Count))
        return Error("bad code count");
      if (Count != M.Functions.size())
        return Error("code/function section count mismatch");
      for (uint32_t I = 0; I < Count; ++I) {
        Function &Func = M.Functions[I];
        Func.CodeOffset = C.offset();
        uint32_t BodySize;
        if (!C.readU32(BodySize))
          return Error("bad body size");
        if (C.remaining() < BodySize)
          return Error("body extends past section");
        size_t BodyEnd = C.offset() + BodySize;
        Cursor BodyCursor(Bytes, C.offset(), BodyEnd);
        uint32_t NumRuns;
        if (!BodyCursor.readU32(NumRuns))
          return Error("bad locals count");
        for (uint32_t R = 0; R < NumRuns; ++R) {
          LocalRun Run;
          if (!BodyCursor.readU32(Run.Count) ||
              !BodyCursor.readValType(Run.Type))
            return Error("bad local run");
          Func.Locals.push_back(Run);
        }
        while (!BodyCursor.atEnd()) {
          Instr I2;
          if (!readInstrAt(Bytes, BodyCursor, I2))
            return Error("bad instruction");
          Func.Body.push_back(std::move(I2));
        }
        if (Func.Body.empty() || Func.Body.back().Op != Opcode::End)
          return Error("function body not terminated by end");
        if (!C.skip(BodySize))
          return Error("body skip failed");
      }
      break;
    }
    default:
      // Skip unknown sections (e.g. data) rather than failing hard.
      break;
    }

    // Advance past the section regardless of how much the handler consumed.
    TopOffset = SectionEnd;
  }
  return M;
}

} // namespace wasm
} // namespace snowwhite
