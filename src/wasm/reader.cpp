#include "wasm/reader.h"

#include "support/leb128.h"

#include <algorithm>
#include <cassert>

namespace snowwhite {
namespace wasm {

namespace {

// Hard resource caps. Counts inside a binary are attacker-controlled; before
// any allocation sized by a count, the count is checked against the bytes
// that would have to back it (every element costs >= 1 byte), and against
// these absolute ceilings so a well-formed-but-huge input cannot OOM either.
constexpr uint64_t MaxFlattenedLocals = 1u << 20;
constexpr uint32_t MaxBrTableTargets = 1u << 16;

/// How much of a decoded section is materialized up front. Section sizes are
/// attacker-controlled, so the buffer only ever *reserves* this much and
/// grows with actual bytes — a claimed multi-gigabyte section that truncates
/// after a kilobyte costs a kilobyte.
constexpr size_t SectionReserveBytes = 64 * 1024;

/// Scratch size for skipping undecoded sections chunk-by-chunk.
constexpr size_t SkipChunkBytes = 16 * 1024;

/// Bounded cursor over the input bytes with primitive readers. All readers
/// return false on truncation or malformed data.
class Cursor {
public:
  Cursor(const std::vector<uint8_t> &Buf, size_t Start, size_t Limit)
      : Bytes(Buf), Offset(Start), End(Limit) {
    assert(End <= Bytes.size() && "cursor end past buffer");
  }

  size_t offset() const { return Offset; }
  bool atEnd() const { return Offset >= End; }
  size_t remaining() const { return End - Offset; }

  bool readByte(uint8_t &Out) {
    if (Offset >= End)
      return false;
    Out = Bytes[Offset++];
    return true;
  }

  bool readU32(uint32_t &Out) {
    uint64_t Wide;
    if (!readU64(Wide) || Wide > UINT32_MAX)
      return false;
    Out = static_cast<uint32_t>(Wide);
    return true;
  }

  bool readU64(uint64_t &Out) {
    size_t Local = Offset;
    if (!decodeULEB128(Bytes, Local, Out) || Local > End)
      return false;
    Offset = Local;
    return true;
  }

  bool readS64(int64_t &Out) {
    size_t Local = Offset;
    if (!decodeSLEB128(Bytes, Local, Out) || Local > End)
      return false;
    Offset = Local;
    return true;
  }

  bool readName(std::string &Out) {
    uint32_t Size;
    if (!readU32(Size) || remaining() < Size)
      return false;
    Out.assign(Bytes.begin() + Offset, Bytes.begin() + Offset + Size);
    Offset += Size;
    return true;
  }

  bool readValType(ValType &Out) {
    uint8_t Byte;
    return readByte(Byte) && valTypeFromByte(Byte, Out);
  }

  bool skip(size_t Count) {
    if (remaining() < Count)
      return false;
    Offset += Count;
    return true;
  }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Offset;
  size_t End;
};

bool readInstrAt(Cursor &C, Instr &Out) {
  uint8_t Byte;
  if (!C.readByte(Byte))
    return false;
  Opcode Op;
  if (!opcodeFromByte(Byte, Op))
    return false;
  Out = Instr(Op);
  Out.Table.clear();
  switch (opcodeImmKind(Op)) {
  case ImmKind::None:
    return true;
  case ImmKind::BlockType: {
    uint8_t TypeByte;
    if (!C.readByte(TypeByte))
      return false;
    if (TypeByte == 0x40) {
      Out.Imm0 = 0;
      return true;
    }
    ValType Type;
    if (!valTypeFromByte(TypeByte, Type))
      return false;
    Out.Imm0 = 1 + static_cast<uint64_t>(Type);
    return true;
  }
  case ImmKind::Label:
  case ImmKind::Func:
  case ImmKind::Local:
  case ImmKind::Global:
  case ImmKind::MemIdx:
    return C.readU64(Out.Imm0);
  case ImmKind::BrTable: {
    uint32_t Count;
    if (!C.readU32(Count))
      return false;
    // Each target needs at least one byte; a count past the remaining bytes
    // (or the absolute cap) is an allocation bomb, not a table.
    if (Count > C.remaining() || Count > MaxBrTableTargets)
      return false;
    Out.Table.resize(Count);
    for (uint32_t I = 0; I < Count; ++I)
      if (!C.readU32(Out.Table[I]))
        return false;
    return C.readU64(Out.Imm0);
  }
  case ImmKind::CallIndirect:
    return C.readU64(Out.Imm0) && C.readU64(Out.Imm1);
  case ImmKind::Mem:
    return C.readU64(Out.Imm1) && C.readU64(Out.Imm0);
  case ImmKind::I32: {
    int64_t Value;
    if (!C.readS64(Value))
      return false;
    if (Value < INT32_MIN || Value > INT32_MAX)
      return false;
    Out.Imm0 = static_cast<uint64_t>(Value);
    return true;
  }
  case ImmKind::I64: {
    int64_t Value;
    if (!C.readS64(Value))
      return false;
    Out.Imm0 = static_cast<uint64_t>(Value);
    return true;
  }
  case ImmKind::F32: {
    uint64_t Bits = 0;
    for (int Shift = 0; Shift < 32; Shift += 8) {
      uint8_t B;
      if (!C.readByte(B))
        return false;
      Bits |= static_cast<uint64_t>(B) << Shift;
    }
    Out.Imm0 = Bits;
    return true;
  }
  case ImmKind::F64: {
    uint64_t Bits = 0;
    for (int Shift = 0; Shift < 64; Shift += 8) {
      uint8_t B;
      if (!C.readByte(B))
        return false;
      Bits |= static_cast<uint64_t>(B) << Shift;
    }
    Out.Imm0 = Bits;
    return true;
  }
  }
  return false;
}

/// True for the section ids this subset decodes into the Module; everything
/// else (tables, elements, data, ...) is skipped without materializing.
bool sectionIsDecoded(uint8_t SectionId) {
  switch (SectionId) {
  case 0:
  case 1:
  case 2:
  case 3:
  case 5:
  case 6:
  case 7:
  case 10:
    return true;
  default:
    return false;
  }
}

/// Decodes one section body into M. SectionBytes holds exactly the section
/// body; BaseOffset is its absolute offset in the module, so code-entry
/// offsets (Function::CodeOffset, the DWARF low_pc anchor) come out
/// identical however the bytes arrived. A handler consuming less than the
/// whole section is tolerated, as in the wasm spec's section framing.
Result<void> decodeSection(uint8_t SectionId,
                           const std::vector<uint8_t> &SectionBytes,
                           size_t BaseOffset, Module &M) {
  Cursor C(SectionBytes, 0, SectionBytes.size());
  switch (SectionId) {
  case 0: { // Custom.
    CustomSection Custom;
    if (!C.readName(Custom.Name))
      return Error(ErrorCode::Truncated, "bad custom section name");
    Custom.Bytes.assign(SectionBytes.begin() + C.offset(),
                        SectionBytes.end());
    M.Customs.push_back(std::move(Custom));
    break;
  }
  case 1: { // Type.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "type section: bad type count");
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "type section: type count " + std::to_string(Count) +
                       " exceeds remaining section bytes");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "type section: entry " + std::to_string(I) + ": ";
      uint8_t Form;
      if (!C.readByte(Form))
        return Error(ErrorCode::Truncated, Entry + "truncated type form");
      if (Form != 0x60)
        return Error(ErrorCode::Unsupported, Entry + "unsupported type form");
      FuncType Type;
      uint32_t NumParams;
      if (!C.readU32(NumParams))
        return Error(ErrorCode::Truncated, Entry + "bad param count");
      if (NumParams > C.remaining())
        return Error(ErrorCode::Malformed,
                     Entry + "param count " + std::to_string(NumParams) +
                         " exceeds remaining section bytes");
      Type.Params.resize(NumParams);
      for (uint32_t P = 0; P < NumParams; ++P)
        if (!C.readValType(Type.Params[P]))
          return Error(ErrorCode::Malformed, Entry + "bad param type");
      uint32_t NumResults;
      if (!C.readU32(NumResults))
        return Error(ErrorCode::Truncated, Entry + "bad result count");
      if (NumResults > 1)
        return Error(ErrorCode::Unsupported,
                     Entry + "multi-value results not supported");
      Type.Results.resize(NumResults);
      for (uint32_t R = 0; R < NumResults; ++R)
        if (!C.readValType(Type.Results[R]))
          return Error(ErrorCode::Malformed, Entry + "bad result type");
      M.Types.push_back(std::move(Type));
    }
    break;
  }
  case 2: { // Import.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "import section: bad import count");
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "import section: import count " + std::to_string(Count) +
                       " exceeds remaining section bytes");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "import section: entry " + std::to_string(I) + ": ";
      FuncImport Import;
      if (!C.readName(Import.ModuleName) || !C.readName(Import.FieldName))
        return Error(ErrorCode::Truncated, Entry + "bad import name");
      uint8_t Kind;
      if (!C.readByte(Kind))
        return Error(ErrorCode::Truncated, Entry + "bad import kind");
      if (Kind != 0x00)
        return Error(ErrorCode::Unsupported,
                     Entry + "only function imports supported");
      if (!C.readU32(Import.TypeIndex))
        return Error(ErrorCode::Truncated, Entry + "bad import type index");
      M.Imports.push_back(std::move(Import));
    }
    break;
  }
  case 3: { // Function.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated,
                   "function section: bad function count");
    // Every declared function costs at least one byte (its type index), so
    // a count past the remaining bytes cannot be satisfied; checking before
    // the resize defuses e.g. a 12-byte module claiming 2^31 functions.
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "function section: function count " +
                       std::to_string(Count) +
                       " exceeds remaining section bytes");
    M.Functions.resize(Count);
    for (uint32_t I = 0; I < Count; ++I)
      if (!C.readU32(M.Functions[I].TypeIndex))
        return Error(ErrorCode::Truncated,
                     "function section: func " + std::to_string(I) +
                         ": bad type index");
    break;
  }
  case 5: { // Memory.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "memory section: bad memory count");
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "memory section: memory count " + std::to_string(Count) +
                       " exceeds remaining section bytes");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "memory section: entry " + std::to_string(I) + ": ";
      MemoryDecl Memory;
      uint8_t Flags;
      if (!C.readByte(Flags))
        return Error(ErrorCode::Truncated, Entry + "bad memory flags");
      Memory.HasMax = Flags & 0x01;
      if (!C.readU32(Memory.MinPages))
        return Error(ErrorCode::Truncated, Entry + "bad memory min");
      if (Memory.HasMax && !C.readU32(Memory.MaxPages))
        return Error(ErrorCode::Truncated, Entry + "bad memory max");
      M.Memories.push_back(Memory);
    }
    break;
  }
  case 6: { // Global.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "global section: bad global count");
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "global section: global count " + std::to_string(Count) +
                       " exceeds remaining section bytes");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "global section: entry " + std::to_string(I) + ": ";
      GlobalDecl Global;
      if (!C.readValType(Global.Type))
        return Error(ErrorCode::Malformed, Entry + "bad global type");
      uint8_t Mutability;
      if (!C.readByte(Mutability))
        return Error(ErrorCode::Truncated, Entry + "bad global mutability");
      Global.Mutable = Mutability != 0;
      if (!readInstrAt(C, Global.Init))
        return Error(ErrorCode::Malformed, Entry + "bad global init");
      Instr EndInstr;
      if (!readInstrAt(C, EndInstr) || EndInstr.Op != Opcode::End)
        return Error(ErrorCode::Malformed,
                     Entry + "global init not terminated");
      M.Globals.push_back(Global);
    }
    break;
  }
  case 7: { // Export.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "export section: bad export count");
    if (Count > C.remaining())
      return Error(ErrorCode::Malformed,
                   "export section: export count " + std::to_string(Count) +
                       " exceeds remaining section bytes");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "export section: entry " + std::to_string(I) + ": ";
      FuncExport Export;
      if (!C.readName(Export.Name))
        return Error(ErrorCode::Truncated, Entry + "bad export name");
      uint8_t Kind;
      if (!C.readByte(Kind))
        return Error(ErrorCode::Truncated, Entry + "bad export kind");
      if (Kind != 0x00)
        return Error(ErrorCode::Unsupported,
                     Entry + "only function exports supported");
      if (!C.readU32(Export.FuncIndex))
        return Error(ErrorCode::Truncated, Entry + "bad export func index");
      M.Exports.push_back(std::move(Export));
    }
    break;
  }
  case 10: { // Code.
    uint32_t Count;
    if (!C.readU32(Count))
      return Error(ErrorCode::Truncated, "code section: bad code count");
    if (Count != M.Functions.size())
      return Error(ErrorCode::Malformed,
                   "code section: code/function section count mismatch");
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Entry = "code section: func " + std::to_string(I) + ": ";
      Function &Func = M.Functions[I];
      Func.CodeOffset = BaseOffset + C.offset();
      uint32_t BodySize;
      if (!C.readU32(BodySize))
        return Error(ErrorCode::Truncated, Entry + "bad body size");
      if (C.remaining() < BodySize)
        return Error(ErrorCode::Truncated,
                     Entry + "body extends past section");
      size_t BodyEnd = C.offset() + BodySize;
      Cursor BodyCursor(SectionBytes, C.offset(), BodyEnd);
      uint32_t NumRuns;
      if (!BodyCursor.readU32(NumRuns))
        return Error(ErrorCode::Truncated, Entry + "bad locals count");
      if (NumRuns > BodyCursor.remaining())
        return Error(ErrorCode::Malformed,
                     Entry + "local run count " + std::to_string(NumRuns) +
                         " exceeds remaining body bytes");
      uint64_t TotalLocals = 0;
      for (uint32_t R = 0; R < NumRuns; ++R) {
        LocalRun Run;
        if (!BodyCursor.readU32(Run.Count) ||
            !BodyCursor.readValType(Run.Type))
          return Error(ErrorCode::Malformed, Entry + "bad local run");
        // Run.Count is a multiplier the binary gets for free; cap the
        // flattened total so flattenedLocals()/validation cannot OOM.
        TotalLocals += Run.Count;
        if (TotalLocals > MaxFlattenedLocals)
          return Error(ErrorCode::LimitExceeded,
                       Entry + "more than " +
                           std::to_string(MaxFlattenedLocals) +
                           " flattened locals");
        Func.Locals.push_back(Run);
      }
      while (!BodyCursor.atEnd()) {
        Instr I2;
        if (!readInstrAt(BodyCursor, I2))
          return Error(ErrorCode::Malformed,
                       Entry + "bad instruction at body offset " +
                           std::to_string(BodyCursor.offset() -
                                          (BodyEnd - BodySize)));
        Func.Body.push_back(std::move(I2));
      }
      if (Func.Body.empty() || Func.Body.back().Op != Opcode::End)
        return Error(ErrorCode::Malformed,
                     Entry + "function body not terminated by end");
      if (!C.skip(BodySize))
        return Error(ErrorCode::Truncated, Entry + "body skip failed");
    }
    break;
  }
  default:
    break;
  }
  return {};
}

/// Reads up to N bytes from Source into Buf, looping over short reads.
/// Returns how many arrived (< N only at end of stream).
Result<size_t> fillExact(io::ByteSource &Source, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    Result<size_t> R = Source.readSome(Buf + Got, N - Got);
    if (R.isErr())
      return R;
    if (*R == 0)
      break;
    Got += *R;
  }
  return Got;
}

} // namespace

bool readInstr(const std::vector<uint8_t> &Bytes, size_t &Offset, Instr &Out) {
  Cursor C(Bytes, Offset, Bytes.size());
  if (!readInstrAt(C, Out))
    return false;
  Offset = C.offset();
  return true;
}

Result<Module> readModuleStreamed(io::ByteSource &Source,
                                  const ReadLimits &Limits) {
  uint8_t Header[8];
  Result<size_t> GotHeader = fillExact(Source, Header, 8);
  if (GotHeader.isErr())
    return GotHeader.error();
  if (*GotHeader < 8)
    return Error(ErrorCode::Truncated, "module too small for header");
  const uint8_t Expected[] = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  for (int I = 0; I < 8; ++I)
    if (Header[I] != Expected[I])
      return Error(ErrorCode::Malformed, "bad magic or version");

  Module M;
  uint64_t ModuleBytes = 8;
  std::vector<uint8_t> SectionBytes;
  std::vector<uint8_t> LebBuf;
  uint8_t Chunk[SkipChunkBytes];
  for (;;) {
    if (Limits.Watchdog && Limits.Watchdog->expired())
      return Error(ErrorCode::Timeout,
                   "module decode exceeded its time budget");
    uint8_t SectionId;
    {
      Result<size_t> R = Source.readSome(&SectionId, 1);
      if (R.isErr())
        return R.error();
      if (*R == 0)
        break; // Clean end of module at a section boundary.
    }
    // Section size, pulled byte-by-byte so a truncated stream is detected
    // exactly where the buffered reader detects it. The bytes run through
    // decodeULEB128 afterwards so over-long-encoding rejection matches too.
    LebBuf.clear();
    for (;;) {
      uint8_t B;
      Result<size_t> R = Source.readSome(&B, 1);
      if (R.isErr())
        return R.error();
      if (*R == 0)
        return Error(ErrorCode::Truncated, "truncated section size");
      LebBuf.push_back(B);
      if (!(B & 0x80) || LebBuf.size() >= 10)
        break;
    }
    uint64_t SectionSize64 = 0;
    size_t LebOffset = 0;
    if (!decodeULEB128(LebBuf, LebOffset, SectionSize64) ||
        SectionSize64 > UINT32_MAX)
      return Error(ErrorCode::Truncated, "truncated section size");
    uint32_t SectionSize = static_cast<uint32_t>(SectionSize64);

    if (SectionSize64 > Limits.MaxSectionBytes)
      return Error(ErrorCode::LimitExceeded,
                   "section " + std::to_string(SectionId) + ": size " +
                       std::to_string(SectionSize64) +
                       " exceeds the per-section byte budget " +
                       std::to_string(Limits.MaxSectionBytes));
    ModuleBytes += 1 + LebBuf.size() + SectionSize64;
    if (ModuleBytes > Limits.MaxModuleBytes)
      return Error(ErrorCode::LimitExceeded,
                   "module exceeds the whole-module byte budget " +
                       std::to_string(Limits.MaxModuleBytes));

    bool Decoded = sectionIsDecoded(SectionId);
    size_t BaseOffset = static_cast<size_t>(Source.consumed());
    SectionBytes.clear();
    if (Decoded)
      SectionBytes.reserve(
          std::min<uint64_t>(SectionSize, SectionReserveBytes));
    uint64_t Left = SectionSize;
    while (Left > 0) {
      if (Limits.Watchdog && Limits.Watchdog->expired())
        return Error(ErrorCode::Timeout,
                     "module decode exceeded its time budget");
      size_t Want = static_cast<size_t>(
          std::min<uint64_t>(Left, sizeof(Chunk)));
      Result<size_t> R = Source.readSome(Chunk, Want);
      if (R.isErr())
        return R.error();
      if (*R == 0)
        return Error(ErrorCode::Truncated,
                     "section " + std::to_string(SectionId) +
                         " extends past end of file");
      if (Decoded)
        SectionBytes.insert(SectionBytes.end(), Chunk, Chunk + *R);
      Left -= *R;
    }
    if (Decoded) {
      Result<void> DecodedSection =
          decodeSection(SectionId, SectionBytes, BaseOffset, M);
      if (DecodedSection.isErr())
        return DecodedSection.error();
    }
  }
  return M;
}

Result<Module> readModule(const std::vector<uint8_t> &Bytes) {
  io::MemoryByteSource Source(Bytes);
  return readModuleStreamed(Source);
}

} // namespace wasm
} // namespace snowwhite
