//===- wasm/module.h - In-memory WebAssembly module model -----------------===//

#ifndef SNOWWHITE_WASM_MODULE_H
#define SNOWWHITE_WASM_MODULE_H

#include "wasm/instr.h"
#include "wasm/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace wasm {

/// An imported function (module."name" with a type index).
struct FuncImport {
  std::string ModuleName;
  std::string FieldName;
  uint32_t TypeIndex = 0;
};

/// An exported function.
struct FuncExport {
  std::string Name;
  uint32_t FuncIndex = 0;
};

/// A run of locals of the same type, as encoded in a code entry.
struct LocalRun {
  uint32_t Count = 0;
  ValType Type = ValType::I32;

  bool operator==(const LocalRun &Other) const = default;
};

/// A defined (non-imported) function.
struct Function {
  uint32_t TypeIndex = 0;
  std::vector<LocalRun> Locals;
  std::vector<Instr> Body; ///< Includes the terminating End.

  /// Byte offset of this function's code entry in the serialized module,
  /// filled in by Writer::write and Reader::read. This is the anchor that
  /// DWARF DW_AT_low_pc refers to.
  uint64_t CodeOffset = 0;

  /// Expands Locals into a flat list of local value types (excluding
  /// parameters).
  std::vector<ValType> flattenedLocals() const;
};

/// Memory limits (MVP: one memory at most).
struct MemoryDecl {
  uint32_t MinPages = 1;
  bool HasMax = false;
  uint32_t MaxPages = 0;
};

/// A global variable with a constant initializer.
struct GlobalDecl {
  ValType Type = ValType::I32;
  bool Mutable = false;
  Instr Init = Instr::i32Const(0); ///< Must be a const instruction.
};

/// A custom section, e.g. ".debug_info". Bytes are opaque at this layer.
struct CustomSection {
  std::string Name;
  std::vector<uint8_t> Bytes;
};

/// An entire WebAssembly module.
struct Module {
  std::vector<FuncType> Types;
  std::vector<FuncImport> Imports;
  std::vector<Function> Functions; ///< Defined functions only.
  std::vector<MemoryDecl> Memories;
  std::vector<GlobalDecl> Globals;
  std::vector<FuncExport> Exports;
  std::vector<CustomSection> Customs;

  /// Adds Type if not present and returns its index.
  uint32_t internType(const FuncType &Type);

  /// Returns the FuncType of defined function DefinedIndex (i.e. the index
  /// into Functions, not counting imports).
  const FuncType &functionType(uint32_t DefinedIndex) const;

  /// Index space position of defined function DefinedIndex (imports come
  /// first in the wasm function index space).
  uint32_t functionSpaceIndex(uint32_t DefinedIndex) const {
    return static_cast<uint32_t>(Imports.size()) + DefinedIndex;
  }

  /// Returns the custom section named Name, or nullptr.
  const CustomSection *findCustom(const std::string &Name) const;

  /// Total number of instructions across all defined function bodies.
  uint64_t countInstructions() const;
};

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_MODULE_H
