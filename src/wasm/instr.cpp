#include "wasm/instr.h"

#include <array>
#include <cassert>
#include <cstring>

namespace snowwhite {
namespace wasm {

uint8_t valTypeByte(ValType Type) {
  switch (Type) {
  case ValType::I32:
    return 0x7f;
  case ValType::I64:
    return 0x7e;
  case ValType::F32:
    return 0x7d;
  case ValType::F64:
    return 0x7c;
  }
  assert(false && "unknown ValType");
  return 0;
}

bool valTypeFromByte(uint8_t Byte, ValType &Type) {
  switch (Byte) {
  case 0x7f:
    Type = ValType::I32;
    return true;
  case 0x7e:
    Type = ValType::I64;
    return true;
  case 0x7d:
    Type = ValType::F32;
    return true;
  case 0x7c:
    Type = ValType::F64;
    return true;
  default:
    return false;
  }
}

const char *valTypeName(ValType Type) {
  switch (Type) {
  case ValType::I32:
    return "i32";
  case ValType::I64:
    return "i64";
  case ValType::F32:
    return "f32";
  case ValType::F64:
    return "f64";
  }
  assert(false && "unknown ValType");
  return "?";
}

namespace {

struct OpcodeInfo {
  const char *Name;
  uint8_t Byte;
  ImmKind Imm;
};

const OpcodeInfo OpcodeTable[NumOpcodes] = {
#define WASM_OPCODE(Name, Wat, Byte, Imm) {Wat, Byte, ImmKind::Imm},
#include "wasm/opcodes.def"
};

} // namespace

const char *opcodeName(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Name;
}

uint8_t opcodeByte(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Byte;
}

ImmKind opcodeImmKind(Opcode Op) {
  return OpcodeTable[static_cast<unsigned>(Op)].Imm;
}

bool opcodeFromByte(uint8_t Byte, Opcode &Op) {
  // Opcode bytes are sparse (gaps around 0x12..0x19 etc.), so use a reverse
  // table built once on first use.
  static const auto Reverse = [] {
    std::array<int16_t, 256> Table;
    Table.fill(-1);
    for (unsigned I = 0; I < NumOpcodes; ++I)
      Table[OpcodeTable[I].Byte] = static_cast<int16_t>(I);
    return Table;
  }();
  int16_t Index = Reverse[Byte];
  if (Index < 0)
    return false;
  Op = static_cast<Opcode>(Index);
  return true;
}

uint64_t encodeBlockTypeImm(BlockType Type) {
  if (!Type.HasResult)
    return 0;
  return 1 + static_cast<uint64_t>(Type.Result);
}

Instr Instr::f32Const(float Value) {
  uint32_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Instr(Opcode::F32Const, Bits);
}

Instr Instr::f64Const(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Instr(Opcode::F64Const, Bits);
}

Instr Instr::block(BlockType Type) {
  return Instr(Opcode::Block, encodeBlockTypeImm(Type));
}

Instr Instr::loop(BlockType Type) {
  return Instr(Opcode::Loop, encodeBlockTypeImm(Type));
}

Instr Instr::ifOp(BlockType Type) {
  return Instr(Opcode::If, encodeBlockTypeImm(Type));
}

float Instr::f32Value() const {
  assert(Op == Opcode::F32Const && "not an f32.const");
  uint32_t Bits = static_cast<uint32_t>(Imm0);
  float Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

double Instr::f64Value() const {
  assert(Op == Opcode::F64Const && "not an f64.const");
  uint64_t Bits = Imm0;
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

int32_t Instr::i32Value() const {
  assert(Op == Opcode::I32Const && "not an i32.const");
  return static_cast<int32_t>(static_cast<int64_t>(Imm0));
}

BlockType Instr::blockType() const {
  assert((Op == Opcode::Block || Op == Opcode::Loop || Op == Opcode::If) &&
         "not a block instruction");
  if (Imm0 == 0)
    return BlockType::empty();
  return BlockType::value(static_cast<ValType>(Imm0 - 1));
}

} // namespace wasm
} // namespace snowwhite
