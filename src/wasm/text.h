//===- wasm/text.h - WAT-style instruction and module printing ------------===//

#ifndef SNOWWHITE_WASM_TEXT_H
#define SNOWWHITE_WASM_TEXT_H

#include "wasm/module.h"

#include <string>
#include <vector>

namespace snowwhite {
namespace wasm {

/// Controls which static immediates instrTokens emits. The dataset
/// representation (paper §4.1) omits arguments that are unlikely to help
/// prediction: memory alignment hints and the callee index of calls.
struct TokenOptions {
  bool OmitAlignment = true;
  bool OmitCallIndex = true;
};

/// Renders one instruction as text-format tokens, e.g. {"i32.const", "42"}
/// or {"f64.load", "offset=8"}. Structured per the paper's input
/// representation; raw local indices are kept (the dataset extractor
/// substitutes "<param>" where appropriate).
std::vector<std::string> instrTokens(const Instr &I,
                                     const TokenOptions &Options = {});

/// Renders one instruction as a single string (tokens joined by spaces).
std::string instrToString(const Instr &I, const TokenOptions &Options = {});

/// Pretty-prints a function like Figure 1b of the paper, with byte offsets
/// of each instruction (relative to the function's CodeOffset) on the left
/// and nesting-aware indentation.
std::string printFunction(const Module &M, uint32_t DefinedIndex);

/// Renders a function type like "(param i32 f64) (result i32)".
std::string printFuncType(const FuncType &Type);

} // namespace wasm
} // namespace snowwhite

#endif // SNOWWHITE_WASM_TEXT_H
