#include "analysis/analyzer.h"

#include "analysis/cfg.h"

#include <algorithm>
#include <limits>

namespace snowwhite {
namespace analysis {

using wasm::FuncType;
using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

namespace {

/// Cap on recorded caller-param -> callee-formal edges per function; beyond
/// this the call-graph closure degrades (misses edges) rather than growing.
constexpr size_t MaxEscapeEdges = 256;

void bump(uint32_t &Counter) {
  if (Counter != std::numeric_limits<uint32_t>::max())
    ++Counter;
}

void noteWidth(uint8_t &Min, uint8_t &Max, unsigned Bytes) {
  uint8_t B = static_cast<uint8_t>(Bytes);
  if (Min == 0 || B < Min)
    Min = B;
  if (B > Max)
    Max = B;
}

bool isZeroExtLoad(Opcode Op) {
  switch (Op) {
  case Opcode::I32Load8U:
  case Opcode::I32Load16U:
  case Opcode::I64Load8U:
  case Opcode::I64Load16U:
  case Opcode::I64Load32U:
    return true;
  default:
    return false;
  }
}

enum class SignClass { None, SignedOp, UnsignedOp, SignedCmp, UnsignedCmp };

/// Signedness signal of an instruction with respect to its *integer
/// operands*. Only sign-suffixed operators that consume the value count;
/// result-suffixed conversions (i32.trunc_f64_s consumes a float) do not.
SignClass signClass(Opcode Op) {
  switch (Op) {
  case Opcode::I32DivS:
  case Opcode::I32RemS:
  case Opcode::I32ShrS:
  case Opcode::I64DivS:
  case Opcode::I64RemS:
  case Opcode::I64ShrS:
  case Opcode::I64ExtendI32S:
  case Opcode::F32ConvertI32S:
  case Opcode::F32ConvertI64S:
  case Opcode::F64ConvertI32S:
  case Opcode::F64ConvertI64S:
  case Opcode::I32Extend8S:
  case Opcode::I32Extend16S:
  case Opcode::I64Extend8S:
  case Opcode::I64Extend16S:
  case Opcode::I64Extend32S:
    return SignClass::SignedOp;
  case Opcode::I32DivU:
  case Opcode::I32RemU:
  case Opcode::I32ShrU:
  case Opcode::I64DivU:
  case Opcode::I64RemU:
  case Opcode::I64ShrU:
  case Opcode::I64ExtendI32U:
  case Opcode::F32ConvertI32U:
  case Opcode::F32ConvertI64U:
  case Opcode::F64ConvertI32U:
  case Opcode::F64ConvertI64U:
    return SignClass::UnsignedOp;
  case Opcode::I32LtS:
  case Opcode::I32GtS:
  case Opcode::I32LeS:
  case Opcode::I32GeS:
  case Opcode::I64LtS:
  case Opcode::I64GtS:
  case Opcode::I64LeS:
  case Opcode::I64GeS:
    return SignClass::SignedCmp;
  case Opcode::I32LtU:
  case Opcode::I32GtU:
  case Opcode::I32LeU:
  case Opcode::I32GeU:
  case Opcode::I64LtU:
  case Opcode::I64GtU:
  case Opcode::I64LeU:
  case Opcode::I64GeU:
    return SignClass::UnsignedCmp;
  default:
    return SignClass::None;
  }
}

bool isFloatOp(Opcode Op) {
  uint8_t Byte = opcodeByte(Op);
  return (Byte >= 0x5b && Byte <= 0x66) || (Byte >= 0x8b && Byte <= 0xa6);
}

/// A "parameter P escapes into call target T at argument position A" record
/// used by the bottom-up call-graph closure.
struct EscapeEdge {
  uint64_t TargetSpace = 0;
  uint32_t ArgPos = 0;
  uint32_t Param = 0;
};

struct FunctionFacts {
  FunctionSummary Summary;
  std::vector<EscapeEdge> Edges;
  std::vector<uint32_t> Callees;
};

/// Folds the evaluator's callbacks into per-parameter / return counters.
/// MustMask (optional, indexed by body position) marks instructions that lie
/// on every entry->exit path; events at those positions additionally bump
/// the path-sensitive Must* counters.
class EvidenceCollector : public EvalSink {
public:
  EvidenceCollector(FunctionSummary &Out,
                    const std::vector<bool> *Must = nullptr)
      : Summary(Out), MustMask(Must) {}

  void onInstr(size_t Index, const Instr &I,
               const std::vector<AbstractValue> &Stack,
               bool Unreachable) override {
    CurIndex = Index;
  }

  void onLoad(const Instr &I, const AbstractValue &Addr, unsigned Bytes,
              bool SignExtending) override {
    ParamEvidence *E = paramFor(Addr.Tag);
    if (!E)
      return;
    bump(Addr.Tag.Direct ? E->DirectLoads : E->DerivedLoads);
    if (onEveryPath())
      bump(Addr.Tag.Direct ? E->MustDirectLoads : E->MustDerivedLoads);
    noteWidth(E->MinAccessBytes, E->MaxAccessBytes, Bytes);
    if (SignExtending)
      bump(E->SignExtLoads);
    else if (isZeroExtLoad(I.Op))
      bump(E->ZeroExtLoads);
  }

  void onStore(const Instr &I, const AbstractValue &Addr,
               const AbstractValue &Value, unsigned Bytes) override {
    if (ParamEvidence *E = paramFor(Addr.Tag)) {
      bump(Addr.Tag.Direct ? E->DirectStores : E->DerivedStores);
      if (onEveryPath())
        bump(Addr.Tag.Direct ? E->MustDirectStores : E->MustDerivedStores);
      noteWidth(E->MinAccessBytes, E->MaxAccessBytes, Bytes);
    }
    if (ParamEvidence *E = paramFor(Value.Tag))
      bump(E->StoredToMemory);
  }

  void onUnary(const Instr &I, const AbstractValue &Operand) override {
    noteNumeric(I.Op, Operand);
  }

  void onBinary(const Instr &I, const AbstractValue &Lhs,
                const AbstractValue &Rhs) override {
    noteNumeric(I.Op, Lhs);
    noteNumeric(I.Op, Rhs);
  }

  void onCondition(const Instr &I, const AbstractValue &Condition) override {
    if (ParamEvidence *E = paramFor(Condition.Tag))
      bump(E->Conditions);
  }

  void onCall(const Instr &I, uint64_t TargetSpaceIndex, bool Indirect,
              const std::vector<AbstractValue> &Args) override {
    if (!Indirect)
      recordCallee(TargetSpaceIndex);
    for (uint32_t Pos = 0; Pos < Args.size(); ++Pos) {
      ParamEvidence *E = paramFor(Args[Pos].Tag);
      if (!E)
        continue;
      if (Indirect) {
        bump(E->EscapesIndirect);
        continue;
      }
      bump(E->EscapesToCalls);
      recordCallTarget(*E, TargetSpaceIndex);
      if (Edges.size() < MaxEscapeEdges)
        Edges.push_back({TargetSpaceIndex, Pos, Args[Pos].Tag.Param});
    }
  }

  void onReturn(const AbstractValue &Value) override {
    ReturnEvidence &R = Summary.Ret;
    bump(R.TotalReturns);
    if (Value.Tag.Param != NoParam && Value.Tag.Direct) {
      bump(R.FromParam);
      return;
    }
    switch (Value.Tag.Org) {
    case Origin::Load:
      bump(R.FromLoad);
      noteWidth(R.MinLoadBytes, R.MaxLoadBytes, Value.Tag.OrgBytes);
      if (Value.Tag.OrgSigned)
        bump(R.SignExtLoads);
      break;
    case Origin::Compare:
      bump(R.FromComparison);
      break;
    case Origin::Const:
      bump(R.FromConst);
      break;
    case Origin::Call:
      bump(R.FromCall);
      break;
    default:
      bump(R.FromOther);
      break;
    }
  }

  std::vector<EscapeEdge> takeEdges() { return std::move(Edges); }
  std::vector<uint32_t> takeCallees() {
    std::sort(Callees.begin(), Callees.end());
    Callees.erase(std::unique(Callees.begin(), Callees.end()),
                  Callees.end());
    return std::move(Callees);
  }

private:
  ParamEvidence *paramFor(const ValueTag &Tag) {
    if (Tag.Param == NoParam || Tag.Param >= Summary.Params.size())
      return nullptr;
    return &Summary.Params[Tag.Param];
  }

  /// True when the instruction currently executing lies on every
  /// entry->exit path (its block dominates the CFG's synthetic exit).
  bool onEveryPath() const {
    return MustMask && CurIndex < MustMask->size() && (*MustMask)[CurIndex];
  }

  void noteNumeric(Opcode Op, const AbstractValue &Operand) {
    ParamEvidence *E = paramFor(Operand.Tag);
    if (!E)
      return;
    switch (signClass(Op)) {
    case SignClass::SignedOp:
      bump(E->SignedOps);
      if (onEveryPath())
        bump(E->MustSignedOps);
      break;
    case SignClass::UnsignedOp:
      bump(E->UnsignedOps);
      if (onEveryPath())
        bump(E->MustUnsignedOps);
      break;
    case SignClass::SignedCmp:
      bump(E->SignedCmps);
      break;
    case SignClass::UnsignedCmp:
      bump(E->UnsignedCmps);
      break;
    case SignClass::None:
      break;
    }
    if (isFloatOp(Op))
      bump(E->FloatOps);
  }

  void recordCallTarget(ParamEvidence &E, uint64_t TargetSpace) {
    uint32_t Target = static_cast<uint32_t>(TargetSpace);
    auto It = std::lower_bound(E.CallTargets.begin(), E.CallTargets.end(),
                               Target);
    if (It != E.CallTargets.end() && *It == Target)
      return;
    if (E.CallTargets.size() >= MaxCallTargets) {
      E.CallTargetsOverflow = true;
      return;
    }
    E.CallTargets.insert(It, Target);
  }

  void recordCallee(uint64_t TargetSpace) {
    if (Callees.size() < MaxEscapeEdges)
      Callees.push_back(static_cast<uint32_t>(TargetSpace));
  }

  FunctionSummary &Summary;
  const std::vector<bool> *MustMask;
  size_t CurIndex = 0;
  std::vector<EscapeEdge> Edges;
  std::vector<uint32_t> Callees;
};

/// Merges the newly-observed back-edge state into the accumulated carry.
/// Returns true if the carry changed (fixpoint not yet reached).
bool mergeCarry(LoopCarry &Into, const LoopCarry &From) {
  bool Changed = false;
  for (const auto &[LoopIndex, Tags] : From) {
    auto [It, Inserted] = Into.try_emplace(LoopIndex, Tags);
    if (Inserted) {
      Changed = true;
      continue;
    }
    if (It->second.size() != Tags.size())
      continue; // Defensive; sizes are fixed per function.
    for (size_t L = 0; L < Tags.size(); ++L) {
      ValueTag Merged = mergeTags(It->second[L], Tags[L]);
      if (!(Merged == It->second[L])) {
        It->second[L] = Merged;
        Changed = true;
      }
    }
  }
  return Changed;
}

Result<FunctionFacts> analyzeFunctionFacts(const Module &M,
                                           uint32_t DefinedIndex,
                                           const AnalyzeOptions &AOpts) {
  if (DefinedIndex >= M.Functions.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function type index out of range");
  const FuncType &Type = M.Types[Func.TypeIndex];

  FunctionFacts Facts;
  FunctionSummary &Summary = Facts.Summary;
  Summary.DefinedIndex = DefinedIndex;
  Summary.Params.resize(Type.Params.size());
  for (size_t P = 0; P < Type.Params.size(); ++P)
    Summary.Params[P].LowType = Type.Params[P];
  Summary.HasReturn = !Type.Results.empty();
  if (Summary.HasReturn)
    Summary.Ret.LowType = Type.Results.front();
  Summary.TagsTracked =
      Type.Params.size() + Func.flattenedLocals().size() <= MaxTrackedLocals;

  // Close loop back-edges. Both engines produce bit-identical carry maps and
  // round counts (see analysis/cfg.h); the legacy engine is kept as the
  // differential baseline.
  LoopCarry Carry;
  std::vector<bool> MustMask;
  if (AOpts.Engine == FixpointEngine::CfgWorklist) {
    Result<ControlFlowGraph> Cfg = buildCfg(M, DefinedIndex);
    if (Cfg.isErr())
      return Cfg.error();
    Result<CarryFixpoint> Fix =
        runCarryFixpoint(M, DefinedIndex, Cfg.value(), MaxFixpointPasses);
    if (Fix.isErr())
      return Fix.error();
    Carry = std::move(Fix.value().Carry);
    Summary.FixpointPasses = Fix.value().Rounds;
    MustMask = mustExecuteMask(Cfg.value(), Func.Body.size());
  } else {
    // Legacy engine: re-run the body with the previous pass's carry state
    // until the carry stops growing (the tag lattice is finite, so this
    // terminates; the cap only bounds adversarial convergence).
    uint32_t Passes = 0;
    while (Passes < MaxFixpointPasses) {
      LoopCarry Out;
      EvalOptions Options;
      Options.LoopCarryIn = Passes == 0 ? nullptr : &Carry;
      Options.LoopCarryOut = &Out;
      Result<void> Status =
          evaluateFunction(M, DefinedIndex, nullptr, Options);
      if (Status.isErr())
        return Status.error();
      ++Passes;
      if (!mergeCarry(Carry, Out))
        break;
    }
    Summary.FixpointPasses = Passes;
    // The evaluator accepted the body, so buildCfg must too (it rejects a
    // strict subset of what the evaluator rejects); the fallback to an
    // all-false mask is purely defensive and keeps this engine total.
    Result<ControlFlowGraph> Cfg = buildCfg(M, DefinedIndex);
    if (Cfg.isOk())
      MustMask = mustExecuteMask(Cfg.value(), Func.Body.size());
    else
      MustMask.assign(Func.Body.size(), false);
  }

  // Final pass with the collector attached; evidence is only gathered once,
  // on the stabilized state.
  EvidenceCollector Collector(Summary, &MustMask);
  EvalOptions Options;
  Options.LoopCarryIn = Carry.empty() ? nullptr : &Carry;
  Result<void> Status =
      evaluateFunction(M, DefinedIndex, &Collector, Options);
  if (Status.isErr())
    return Status.error();
  Facts.Edges = Collector.takeEdges();
  Facts.Callees = Collector.takeCallees();
  return Facts;
}

} // namespace

Result<LocalDefUse> computeDefUse(const Module &M, uint32_t DefinedIndex) {
  if (DefinedIndex >= M.Functions.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function type index out of range");
  size_t NumLocals = M.Types[Func.TypeIndex].Params.size() +
                     Func.flattenedLocals().size();
  LocalDefUse Chains;
  Chains.Defs.resize(NumLocals);
  Chains.Uses.resize(NumLocals);
  for (size_t Index = 0; Index < Func.Body.size(); ++Index) {
    const Instr &I = Func.Body[Index];
    if (!I.isLocalOp() || I.Imm0 >= NumLocals)
      continue;
    size_t Local = static_cast<size_t>(I.Imm0);
    uint32_t At = static_cast<uint32_t>(Index);
    if (I.Op == Opcode::LocalGet)
      Chains.Uses[Local].push_back(At);
    else if (I.Op == Opcode::LocalSet)
      Chains.Defs[Local].push_back(At);
    else if (I.Op == Opcode::LocalTee) {
      Chains.Defs[Local].push_back(At);
      Chains.Uses[Local].push_back(At);
    }
  }
  return Chains;
}

Result<FunctionSummary> analyzeFunction(const Module &M,
                                        uint32_t DefinedIndex,
                                        const AnalyzeOptions &Options) {
  Result<FunctionFacts> Facts =
      analyzeFunctionFacts(M, DefinedIndex, Options);
  if (Facts.isErr())
    return Facts.error();
  return Facts.take().Summary;
}

Result<ModuleSummary> analyzeModule(const Module &M,
                                    const AnalyzeOptions &Options) {
  ModuleSummary Summary;
  Summary.Functions.reserve(M.Functions.size());
  Summary.Callees.reserve(M.Functions.size());
  std::vector<std::vector<EscapeEdge>> Edges;
  Edges.reserve(M.Functions.size());
  for (uint32_t Index = 0; Index < M.Functions.size(); ++Index) {
    Result<FunctionFacts> Facts = analyzeFunctionFacts(M, Index, Options);
    if (Facts.isErr())
      return Facts.error().withContext("function " + std::to_string(Index));
    FunctionFacts F = Facts.take();
    Summary.Functions.push_back(std::move(F.Summary));
    Summary.Callees.push_back(std::move(F.Callees));
    Edges.push_back(std::move(F.Edges));
  }

  // Bottom-up closure over the direct call graph: a parameter forwarded to
  // a callee inherits that callee's dereference/store-through facts. The
  // pass loop (rather than a topological order) handles recursion; the cap
  // bounds pathological cycles.
  size_t NumImports = M.Imports.size();
  uint32_t Pass = 0;
  bool Changed = true;
  while (Changed && Pass < MaxCallGraphPasses) {
    Changed = false;
    ++Pass;
    for (size_t Caller = 0; Caller < Summary.Functions.size(); ++Caller) {
      for (const EscapeEdge &Edge : Edges[Caller]) {
        if (Edge.TargetSpace < NumImports)
          continue; // Imported callees: no body, no facts.
        size_t Callee = static_cast<size_t>(Edge.TargetSpace - NumImports);
        if (Callee >= Summary.Functions.size())
          continue;
        const FunctionSummary &CalleeSummary = Summary.Functions[Callee];
        if (Edge.ArgPos >= CalleeSummary.Params.size())
          continue;
        const ParamEvidence &Formal = CalleeSummary.Params[Edge.ArgPos];
        if (Edge.Param >= Summary.Functions[Caller].Params.size())
          continue;
        ParamEvidence &Actual = Summary.Functions[Caller].Params[Edge.Param];
        if (Formal.directlyDereferenced() && !Actual.DereferencedViaCallee) {
          Actual.DereferencedViaCallee = true;
          Changed = true;
        }
        if (Formal.storedThrough() && !Actual.StoredViaCallee) {
          Actual.StoredViaCallee = true;
          Changed = true;
        }
      }
    }
  }
  Summary.CallGraphPasses = Pass;
  return Summary;
}

QueryEvidence queryEvidence(const ModuleSummary &Summary,
                            uint32_t DefinedIndex, int ParamIndex) {
  QueryEvidence Query;
  if (DefinedIndex >= Summary.Functions.size())
    return Query;
  const FunctionSummary &F = Summary.Functions[DefinedIndex];
  if (!F.TagsTracked)
    return Query;
  if (ParamIndex < 0) {
    if (F.HasReturn)
      Query.Ret = F.Ret;
    return Query;
  }
  if (static_cast<size_t>(ParamIndex) < F.Params.size())
    Query.Param = F.Params[static_cast<size_t>(ParamIndex)];
  return Query;
}

} // namespace analysis
} // namespace snowwhite
