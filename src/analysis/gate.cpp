#include "analysis/gate.h"

#include "support/telemetry.h"

#include <string>

namespace snowwhite {
namespace analysis {

using typelang::PrimKind;
using typelang::Type;
using typelang::TypeKind;

namespace {

/// Peels `name` wrappers: typedefs are transparent to the checker.
const Type &resolveNames(const Type &T) {
  const Type *Cur = &T;
  while (Cur->kind() == TypeKind::TK_Name)
    Cur = &Cur->inner();
  return *Cur;
}

/// Peels `name` and `const` wrappers.
const Type &resolveQualifiers(const Type &T) {
  const Type *Cur = &T;
  while (Cur->kind() == TypeKind::TK_Name ||
         Cur->kind() == TypeKind::TK_Const)
    Cur = &Cur->inner();
  return *Cur;
}

/// Storage width of a pointee in bits, or 0 when unknown/not applicable
/// (aggregates, arrays, enums — an access through those can be any member
/// width, so the width check must not fire).
unsigned pointeeBits(const Type &Pointee) {
  const Type &T = resolveQualifiers(Pointee);
  switch (T.kind()) {
  case TypeKind::TK_Primitive:
    switch (T.primKind()) {
    case PrimKind::PK_Bool:
    case PrimKind::PK_CChar:
      return 8;
    case PrimKind::PK_Complex:
      return 0; // Two-part layout; member accesses are narrower.
    default:
      return T.primBits();
    }
  case TypeKind::TK_Pointer:
    return 32; // wasm32 pointers.
  default:
    return 0;
  }
}

/// True when the pointee (after typedefs) is const-qualified.
bool pointeeIsConst(const Type &Pointee) {
  const Type *Cur = &Pointee;
  while (Cur->kind() == TypeKind::TK_Name)
    Cur = &Cur->inner();
  return Cur->kind() == TypeKind::TK_Const;
}

GateVerdict checkParam(const Type &Predicted, const ParamEvidence &E,
                       bool PathSensitive) {
  const Type &T = resolveNames(Predicted);

  if (T.kind() == TypeKind::TK_Pointer) {
    const Type &Pointee = T.inner();
    if (pointeeIsConst(Pointee) && E.storedThrough() &&
        (!PathSensitive || E.mustStoredThrough()))
      return GateVerdict::StoreThroughConst;
    unsigned Bits = pointeeBits(Pointee);
    if (Bits > 0 && E.MinAccessBytes > 0 &&
        static_cast<unsigned>(E.MinAccessBytes) * 8 > Bits &&
        (!PathSensitive || E.mustUsedAsAddress()))
      return GateVerdict::AccessWiderThanPointee;
    return GateVerdict::Consistent;
  }

  // Aggregates are lowered byval as pointers by C ABIs, `unknown` claims
  // nothing, and functions decay to pointers — none of those can be
  // contradicted by address-like usage. Only plain scalars can.
  bool Scalar =
      T.kind() == TypeKind::TK_Primitive || T.kind() == TypeKind::TK_Enum;
  if (!Scalar)
    return GateVerdict::Consistent;

  if (E.directlyDereferenced() &&
      (!PathSensitive || E.mustDirectlyDereferenced()))
    return GateVerdict::DerefNonPointer;

  // Signedness: only exclusive sign-suffixed *arithmetic* usage counts.
  // Comparisons are excluded — compilers emit lt_u for enums and pointers
  // regardless of the C-level signedness.
  if (T.kind() == TypeKind::TK_Primitive) {
    if (T.primKind() == PrimKind::PK_Int && E.UnsignedOps > 0 &&
        E.SignedOps == 0 && (!PathSensitive || E.MustUnsignedOps > 0))
      return GateVerdict::SignMismatch;
    if (T.primKind() == PrimKind::PK_Uint && E.SignedOps > 0 &&
        E.UnsignedOps == 0 && (!PathSensitive || E.MustSignedOps > 0))
      return GateVerdict::SignMismatch;
  }
  return GateVerdict::Consistent;
}

GateVerdict checkReturn(const Type &Predicted, const ReturnEvidence &R) {
  const Type &T = resolveNames(Predicted);
  if (T.kind() == TypeKind::TK_Pointer && R.TotalReturns > 0 &&
      R.FromComparison == R.TotalReturns)
    return GateVerdict::PointerFromComparison;
  return GateVerdict::Consistent;
}

} // namespace

const char *gateVerdictName(GateVerdict Verdict) {
  switch (Verdict) {
  case GateVerdict::Consistent:
    return "consistent";
  case GateVerdict::DerefNonPointer:
    return "deref-non-pointer";
  case GateVerdict::StoreThroughConst:
    return "store-through-const";
  case GateVerdict::AccessWiderThanPointee:
    return "access-wider-than-pointee";
  case GateVerdict::SignMismatch:
    return "sign-mismatch";
  case GateVerdict::PointerFromComparison:
    return "pointer-from-comparison";
  }
  return "invalid-verdict";
}

GateVerdict checkConsistency(const typelang::Type &Predicted,
                             const QueryEvidence &Evidence,
                             const GateOptions &Options) {
  GateVerdict Verdict = GateVerdict::Consistent;
  if (Evidence.Param) {
    Verdict = checkParam(Predicted, *Evidence.Param, Options.PathSensitive);
    if (Options.PathSensitive && Verdict == GateVerdict::Consistent &&
        checkParam(Predicted, *Evidence.Param, /*PathSensitive=*/false) !=
            GateVerdict::Consistent)
      // The flow-insensitive gate would have fired; the path check saved the
      // prediction because the contradicting evidence is avoidable.
      telemetry::counter("gate.path_relaxed").add();
  } else if (Evidence.Ret) {
    // Return evidence is already quantified over every return edge, so the
    // path-sensitive mode changes nothing here.
    Verdict = checkReturn(Predicted, *Evidence.Ret);
  }
  telemetry::counter("gate.checks").add();
  if (Verdict != GateVerdict::Consistent) {
    telemetry::counter("gate.contradicted").add();
    telemetry::counter(std::string("gate.verdict.") + gateVerdictName(Verdict))
        .add();
  }
  return Verdict;
}

} // namespace analysis
} // namespace snowwhite
