#include "analysis/evidence.h"

#include <sstream>

namespace snowwhite {
namespace analysis {

namespace {

const char *widthToken(uint8_t Bytes) {
  switch (Bytes) {
  case 1:
    return "<evid:w8>";
  case 2:
    return "<evid:w16>";
  case 4:
    return "<evid:w32>";
  case 8:
    return "<evid:w64>";
  default:
    return nullptr;
  }
}

} // namespace

std::vector<std::string> evidenceTokens(const ParamEvidence &E) {
  std::vector<std::string> Tokens;
  if (E.usedAsAddress() || E.DereferencedViaCallee) {
    Tokens.push_back("<evid:ptr>");
    if (const char *Width = widthToken(E.MinAccessBytes))
      Tokens.push_back(Width);
    if (E.MaxAccessBytes != E.MinAccessBytes)
      if (const char *Width = widthToken(E.MaxAccessBytes))
        Tokens.push_back(Width);
    Tokens.push_back(E.storedThrough() ? "<evid:mut>" : "<evid:const>");
    if (E.SignExtLoads > 0 && E.ZeroExtLoads == 0)
      Tokens.push_back("<evid:sext>");
    else if (E.ZeroExtLoads > 0 && E.SignExtLoads == 0)
      Tokens.push_back("<evid:zext>");
  }
  if (E.SignedOps + E.SignedCmps > 0 && E.UnsignedOps + E.UnsignedCmps == 0)
    Tokens.push_back("<evid:signed>");
  else if (E.UnsignedOps + E.UnsignedCmps > 0 &&
           E.SignedOps + E.SignedCmps == 0)
    Tokens.push_back("<evid:unsigned>");
  if (E.Conditions > 0)
    Tokens.push_back("<evid:cond>");
  if (E.EscapesToCalls + E.EscapesIndirect > 0)
    Tokens.push_back("<evid:escapes>");
  if (E.StoredToMemory > 0)
    Tokens.push_back("<evid:spilled>");
  if (Tokens.empty())
    Tokens.push_back("<evid:none>");
  return Tokens;
}

std::vector<std::string> evidenceTokens(const ReturnEvidence &E) {
  std::vector<std::string> Tokens;
  if (E.TotalReturns == 0) {
    Tokens.push_back("<evid:none>");
    return Tokens;
  }
  if (E.FromComparison == E.TotalReturns)
    Tokens.push_back("<evid:bool>");
  if (E.FromLoad > 0) {
    Tokens.push_back("<evid:fromload>");
    if (const char *Width = widthToken(E.MinLoadBytes))
      Tokens.push_back(Width);
    if (E.SignExtLoads > 0)
      Tokens.push_back("<evid:sext>");
  }
  if (E.FromConst == E.TotalReturns)
    Tokens.push_back("<evid:constret>");
  if (E.FromParam > 0)
    Tokens.push_back("<evid:passthru>");
  if (E.FromCall == E.TotalReturns)
    Tokens.push_back("<evid:fromcall>");
  if (Tokens.empty())
    Tokens.push_back("<evid:none>");
  return Tokens;
}

const std::vector<std::string> &evidenceTokenVocabulary() {
  static const std::vector<std::string> Vocab = {
      "<evid:ptr>",      "<evid:w8>",      "<evid:w16>",
      "<evid:w32>",      "<evid:w64>",     "<evid:mut>",
      "<evid:const>",    "<evid:sext>",    "<evid:zext>",
      "<evid:signed>",   "<evid:unsigned>", "<evid:cond>",
      "<evid:escapes>",  "<evid:spilled>", "<evid:bool>",
      "<evid:fromload>", "<evid:constret>", "<evid:passthru>",
      "<evid:fromcall>", "<evid:none>",
  };
  return Vocab;
}

namespace {

class JsonWriter {
public:
  JsonWriter &key(const char *Name) {
    sep();
    Out << '"' << Name << "\":";
    Pending = false;
    return *this;
  }
  JsonWriter &value(uint64_t V) {
    Out << V;
    Pending = true;
    return *this;
  }
  JsonWriter &value(bool V) {
    Out << (V ? "true" : "false");
    Pending = true;
    return *this;
  }
  JsonWriter &value(const std::string &V) {
    Out << '"' << V << '"';
    Pending = true;
    return *this;
  }
  JsonWriter &raw(const std::string &V) {
    sep();
    Out << V;
    Pending = true;
    return *this;
  }
  JsonWriter &open(char C) {
    Out << C;
    Pending = false;
    return *this;
  }
  JsonWriter &close(char C) {
    Out << C;
    Pending = true;
    return *this;
  }
  std::string str() const { return Out.str(); }

private:
  void sep() {
    if (Pending)
      Out << ',';
  }
  std::ostringstream Out;
  bool Pending = false;
};

void writeParam(JsonWriter &W, const ParamEvidence &E) {
  W.open('{');
  W.key("low_type").value(std::string(wasm::valTypeName(E.LowType)));
  W.key("direct_loads").value(uint64_t(E.DirectLoads));
  W.key("direct_stores").value(uint64_t(E.DirectStores));
  W.key("derived_loads").value(uint64_t(E.DerivedLoads));
  W.key("derived_stores").value(uint64_t(E.DerivedStores));
  W.key("min_access_bytes").value(uint64_t(E.MinAccessBytes));
  W.key("max_access_bytes").value(uint64_t(E.MaxAccessBytes));
  W.key("sign_ext_loads").value(uint64_t(E.SignExtLoads));
  W.key("zero_ext_loads").value(uint64_t(E.ZeroExtLoads));
  W.key("signed_ops").value(uint64_t(E.SignedOps));
  W.key("unsigned_ops").value(uint64_t(E.UnsignedOps));
  W.key("signed_cmps").value(uint64_t(E.SignedCmps));
  W.key("unsigned_cmps").value(uint64_t(E.UnsignedCmps));
  W.key("float_ops").value(uint64_t(E.FloatOps));
  W.key("conditions").value(uint64_t(E.Conditions));
  W.key("escapes_to_calls").value(uint64_t(E.EscapesToCalls));
  W.key("escapes_indirect").value(uint64_t(E.EscapesIndirect));
  W.key("stored_to_memory").value(uint64_t(E.StoredToMemory));
  W.key("must_direct_loads").value(uint64_t(E.MustDirectLoads));
  W.key("must_direct_stores").value(uint64_t(E.MustDirectStores));
  W.key("must_derived_loads").value(uint64_t(E.MustDerivedLoads));
  W.key("must_derived_stores").value(uint64_t(E.MustDerivedStores));
  W.key("must_signed_ops").value(uint64_t(E.MustSignedOps));
  W.key("must_unsigned_ops").value(uint64_t(E.MustUnsignedOps));
  W.key("deref_via_callee").value(E.DereferencedViaCallee);
  W.key("stored_via_callee").value(E.StoredViaCallee);
  W.key("call_targets");
  W.open('[');
  for (uint32_t Target : E.CallTargets)
    W.raw(std::to_string(Target));
  W.close(']');
  W.key("call_targets_overflow").value(E.CallTargetsOverflow);
  W.key("used_as_address").value(E.usedAsAddress());
  W.key("stored_through").value(E.storedThrough());
  W.close('}');
}

void writeReturn(JsonWriter &W, const ReturnEvidence &E) {
  W.open('{');
  W.key("low_type").value(std::string(wasm::valTypeName(E.LowType)));
  W.key("total_returns").value(uint64_t(E.TotalReturns));
  W.key("from_load").value(uint64_t(E.FromLoad));
  W.key("from_comparison").value(uint64_t(E.FromComparison));
  W.key("from_const").value(uint64_t(E.FromConst));
  W.key("from_call").value(uint64_t(E.FromCall));
  W.key("from_param").value(uint64_t(E.FromParam));
  W.key("from_other").value(uint64_t(E.FromOther));
  W.key("min_load_bytes").value(uint64_t(E.MinLoadBytes));
  W.key("max_load_bytes").value(uint64_t(E.MaxLoadBytes));
  W.key("sign_ext_loads").value(uint64_t(E.SignExtLoads));
  W.close('}');
}

void writeFunction(JsonWriter &W, const FunctionSummary &S) {
  W.open('{');
  W.key("defined_index").value(uint64_t(S.DefinedIndex));
  W.key("tags_tracked").value(S.TagsTracked);
  W.key("fixpoint_passes").value(uint64_t(S.FixpointPasses));
  W.key("params");
  W.open('[');
  for (const ParamEvidence &P : S.Params) {
    JsonWriter Inner;
    writeParam(Inner, P);
    W.raw(Inner.str());
  }
  W.close(']');
  if (S.HasReturn) {
    W.key("return");
    JsonWriter Inner;
    writeReturn(Inner, S.Ret);
    W.raw(Inner.str());
  }
  W.close('}');
}

} // namespace

std::string toJson(const ParamEvidence &E) {
  JsonWriter W;
  writeParam(W, E);
  return W.str();
}

std::string toJson(const ReturnEvidence &E) {
  JsonWriter W;
  writeReturn(W, E);
  return W.str();
}

std::string toJson(const FunctionSummary &S) {
  JsonWriter W;
  writeFunction(W, S);
  return W.str();
}

std::string toJson(const ModuleSummary &S) {
  JsonWriter W;
  W.open('{');
  W.key("call_graph_passes").value(uint64_t(S.CallGraphPasses));
  W.key("functions");
  W.open('[');
  for (const FunctionSummary &F : S.Functions) {
    JsonWriter Inner;
    writeFunction(Inner, F);
    W.raw(Inner.str());
  }
  W.close(']');
  W.close('}');
  return W.str();
}

} // namespace analysis
} // namespace snowwhite
