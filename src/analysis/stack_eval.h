//===- analysis/stack_eval.h - Typed-stack abstract interpreter -----------===//
//
// A second, independent implementation of the WebAssembly function-body
// typing algorithm ("validator v2") that doubles as an abstract interpreter:
// next to the exact operand-stack *type* state of the spec validation
// algorithm — including stack-polymorphic typing below `unreachable` — every
// stack slot carries a ValueTag describing where the value came from
// (parameter provenance and producing-instruction category).
//
// The accept/reject verdict of evaluateFunction is intentionally equivalent
// to wasm::validateFunction; the fuzz harness and the analysis test suite
// cross-check the two on every input, so each implementation is the other's
// oracle. On top of the spec algorithm the evaluator adds:
//
//  * flow-sensitive local tags: `local.set`/`local.tee` strongly update the
//    tag of the written local, `if`/`else`/`end` joins merge the tags of all
//    inbound edges, and loop back-edges are closed by re-running the body
//    with the previous pass's carry state (see analyzer.h for the bounded
//    fixpoint driver);
//  * an EvalSink observer fed with typed operands at loads, stores, calls,
//    numeric operations, branches-out (returns), and local writes — only at
//    reachable program points — from which evidence summaries are built
//    without materializing per-instruction state.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_STACK_EVAL_H
#define SNOWWHITE_ANALYSIS_STACK_EVAL_H

#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <map>
#include <vector>

namespace snowwhite {
namespace analysis {

/// Sentinel parameter index for "no parameter provenance".
inline constexpr uint32_t NoParam = 0xffffffffu;

/// Tag-tracking is disabled for bodies with more locals than this: each
/// control frame snapshots the local tag vector, so an adversarial body of
/// nested blocks over a huge local count would otherwise multiply the two
/// bounds into an allocation bomb. Evidence degrades to "no provenance"
/// instead (FunctionSummary::TagsTracked).
inline constexpr size_t MaxTrackedLocals = 512;

/// Category of the instruction that produced a value. Coarse on purpose:
/// this feeds return-value evidence ("the return is always a comparison
/// result"), not a full expression recovery.
enum class Origin : uint8_t {
  Unknown, ///< Merge of differing origins, or entry state.
  Const,   ///< *.const (and zero-initialized locals).
  Load,    ///< A memory load; width/signedness in OrgBytes/OrgSigned.
  Compare, ///< Comparison or eqz (always i32 0/1).
  Arith,   ///< Numeric arithmetic/bitwise instruction.
  Convert, ///< Conversion, extension, or reinterpretation.
  Call,    ///< Result of call/call_indirect.
  Global,  ///< global.get.
  MemQuery ///< memory.size / memory.grow.
};

/// Provenance of one abstract value: which parameter it traces to (if any)
/// and what produced it. `Direct` means the value *is* the parameter
/// (`local.get` of an untouched parameter local, possibly via copies);
/// otherwise a set Param means the value was computed *from* the parameter
/// (e.g. `p + i`, the address of a derived element access).
struct ValueTag {
  uint32_t Param = NoParam;
  bool Direct = false;
  Origin Org = Origin::Unknown;
  uint8_t OrgBytes = 0;  ///< Access width in bytes when Org == Load.
  bool OrgSigned = false; ///< Sign-extending load when Org == Load.

  bool operator==(const ValueTag &Other) const = default;
};

/// Lattice join of two tags: agreement is kept, any disagreement widens
/// toward "no information". Two references to the same parameter join to a
/// derived reference unless both are direct.
ValueTag mergeTags(const ValueTag &A, const ValueTag &B);

/// One operand-stack slot: the spec validator's type state (Known = false is
/// the stack-polymorphic "unknown" below an unreachable point) plus the
/// provenance tag.
struct AbstractValue {
  wasm::ValType Type = wasm::ValType::I32;
  bool Known = true;
  ValueTag Tag;
};

/// Observer over one evaluation walk. Semantic callbacks (loads, stores,
/// calls, returns, ...) fire only at *reachable* program points; onInstr
/// fires for every instruction and reports reachability. The Stack reference
/// passed to onInstr aliases the evaluator's live state and must not be
/// retained.
class EvalSink {
public:
  virtual ~EvalSink();

  /// Before executing instruction Index. Stack is the operand stack state at
  /// that point; Unreachable mirrors the spec validator's per-frame flag.
  virtual void onInstr(size_t Index, const wasm::Instr &I,
                       const std::vector<AbstractValue> &Stack,
                       bool Unreachable) {}
  /// A memory load of Bytes bytes at Addr. SignExtending is true for the
  /// *_s sub-width variants.
  virtual void onLoad(const wasm::Instr &I, const AbstractValue &Addr,
                      unsigned Bytes, bool SignExtending) {}
  /// A memory store of Value (Bytes bytes) through Addr.
  virtual void onStore(const wasm::Instr &I, const AbstractValue &Addr,
                       const AbstractValue &Value, unsigned Bytes) {}
  /// A one-operand numeric instruction (tests, conversions, extensions).
  virtual void onUnary(const wasm::Instr &I, const AbstractValue &Operand) {}
  /// A two-operand numeric instruction; Lhs/Rhs in source order.
  virtual void onBinary(const wasm::Instr &I, const AbstractValue &Lhs,
                        const AbstractValue &Rhs) {}
  /// An i32 value consumed as a condition (if, br_if, select).
  virtual void onCondition(const wasm::Instr &I,
                           const AbstractValue &Condition) {}
  /// A call with its arguments in source order. TargetSpaceIndex is the
  /// function-space index for direct calls and unused when Indirect.
  virtual void onCall(const wasm::Instr &I, uint64_t TargetSpaceIndex,
                      bool Indirect,
                      const std::vector<AbstractValue> &Args) {}
  /// local.set / local.tee writing Value into LocalIndex.
  virtual void onLocalWrite(uint32_t LocalIndex, const AbstractValue &Value) {}
  /// One function-result value leaving the function: explicit `return`,
  /// `br`-family branches targeting the function frame, and the implicit
  /// fall-through at the final `end`.
  virtual void onReturn(const AbstractValue &Value) {}
};

/// Per-loop local-tag state carried over back edges, keyed by the `loop`
/// instruction's body index. Produced by one evaluation pass, consumed by
/// the next (analyzer.h drives this to a bounded fixpoint).
using LoopCarry = std::map<size_t, std::vector<ValueTag>>;

struct EvalOptions {
  /// Back-edge state from the previous pass, merged into the local tags at
  /// each loop entry. Null on the first pass.
  const LoopCarry *LoopCarryIn = nullptr;
  /// When set, receives the local tags observed at every branch to a loop
  /// header during this pass.
  LoopCarry *LoopCarryOut = nullptr;
};

/// Runs the typed-stack evaluation of defined function DefinedIndex.
/// Verdict-equivalent to wasm::validateFunction (asserted by tests and the
/// fuzz differential); bounded on hostile inputs exactly like the validator
/// (same control-nesting cap, no allocation proportional to anything but the
/// body). Sink may be null.
Result<void> evaluateFunction(const wasm::Module &M, uint32_t DefinedIndex,
                              EvalSink *Sink = nullptr,
                              const EvalOptions &Options = {});

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_STACK_EVAL_H
