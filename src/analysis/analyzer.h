//===- analysis/analyzer.h - Module-level dataflow analysis driver --------===//
//
// Drives the typed-stack evaluator (stack_eval.h) to produce evidence
// summaries (evidence.h) for every defined function of a validated module:
//
//  1. Per function, iterate evaluateFunction with loop-carry state until the
//     back-edge local tags stabilize (bounded by MaxFixpointPasses — the tag
//     lattice has finite height, so this converges quickly in practice), then
//     run one final pass with the EvidenceCollector sink attached.
//  2. Build the direct-call graph and propagate "callee dereferences /
//     stores through its formal" facts bottom-up (bounded by
//     MaxCallGraphPasses for cyclic graphs).
//
// All passes are pure functions of the module bytes — no globals, no
// time/thread dependence — so summaries are deterministic and invariant
// under SNOWWHITE_THREADS (asserted in tests/analysis_test.cpp).
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_ANALYZER_H
#define SNOWWHITE_ANALYSIS_ANALYZER_H

#include "analysis/evidence.h"
#include "analysis/stack_eval.h"
#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <vector>

namespace snowwhite {
namespace analysis {

/// Loop back-edge fixpoint cap. The per-local tag lattice has height <= 3
/// (specific -> widened -> unknown), so honest inputs stabilize in 2-3
/// passes; the cap only guards adversarial inputs against slow convergence.
inline constexpr uint32_t MaxFixpointPasses = 8;

/// Bottom-up call-graph propagation cap (handles recursion cycles).
inline constexpr uint32_t MaxCallGraphPasses = 16;

/// Which machinery hosts the per-function loop-carry fixpoint. Both engines
/// produce bit-identical summaries (same Evaluator core, same rounds — see
/// analysis/cfg.h); BodyRerun is kept as the differential baseline for tests
/// and `snowwhite_fuzz --cfg`.
enum class FixpointEngine : uint8_t {
  /// Worklist over the explicit CFG: rounds resume from the earliest loop
  /// header whose carry changed instead of re-running the whole body.
  CfgWorklist,
  /// Legacy engine: re-run evaluateFunction over the full body each round.
  BodyRerun,
};

struct AnalyzeOptions {
  FixpointEngine Engine = FixpointEngine::CfgWorklist;
};

/// Per-local def-use chains for one function: body indices of instructions
/// writing (local.set/tee) and reading (local.get) each local.
struct LocalDefUse {
  std::vector<std::vector<uint32_t>> Defs; ///< Indexed by local index.
  std::vector<std::vector<uint32_t>> Uses;
};

/// Computes def-use chains for defined function DefinedIndex. Fails only on
/// out-of-range indices (callers analyze validated modules).
Result<LocalDefUse> computeDefUse(const wasm::Module &M,
                                  uint32_t DefinedIndex);

/// Analyzes one defined function (fixpoint + evidence collection). The
/// module must already be validated; a typing error inside the evaluator is
/// reported, never asserted.
Result<FunctionSummary> analyzeFunction(const wasm::Module &M,
                                        uint32_t DefinedIndex,
                                        const AnalyzeOptions &Options = {});

/// Analyzes every defined function and closes the summaries over the direct
/// call graph. Runs in time linear in the module size (times the small
/// fixpoint caps); never allocates more than O(functions + params) summary
/// state.
Result<ModuleSummary> analyzeModule(const wasm::Module &M,
                                    const AnalyzeOptions &Options = {});

/// Evidence lookup for one prediction query: ParamIndex >= 0 selects a
/// parameter, ParamIndex < 0 the return slot. Returns an empty QueryEvidence
/// when the function has no summary (e.g. tag tracking disabled).
QueryEvidence queryEvidence(const ModuleSummary &Summary,
                            uint32_t DefinedIndex, int ParamIndex);

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_ANALYZER_H
