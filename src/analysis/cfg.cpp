#include "analysis/cfg.h"

#include "analysis/eval_core.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>

namespace snowwhite {
namespace analysis {

using wasm::FuncType;
using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;

const char *edgeKindName(EdgeKind Kind) {
  switch (Kind) {
  case EdgeKind::Fall:
    return "fall";
  case EdgeKind::BlockEntry:
    return "block";
  case EdgeKind::LoopEntry:
    return "loop";
  case EdgeKind::IfTrue:
    return "if-true";
  case EdgeKind::IfFalse:
    return "if-false";
  case EdgeKind::Br:
    return "br";
  case EdgeKind::BrIf:
    return "br-if";
  case EdgeKind::BrTable:
    return "br-table";
  case EdgeKind::Return:
    return "return";
  case EdgeKind::Unreachable:
    return "unreachable";
  }
  return "unknown";
}

bool ControlFlowGraph::dominates(uint32_t A, uint32_t B) const {
  if (A >= Blocks.size() || B >= Blocks.size())
    return false;
  if (Blocks[A].Rpo == NoBlock || Blocks[B].Rpo == NoBlock)
    return false;
  uint32_t Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    uint32_t Up = Blocks[Cur].IDom;
    if (Up == NoBlock || Up == Cur)
      return false; // Reached the entry (its own idom) without meeting A.
    Cur = Up;
  }
}

namespace {

/// The opcodes that terminate or open basic blocks; everything else is
/// straight-line.
bool isControl(Opcode Op) {
  switch (Op) {
  case Opcode::Block:
  case Opcode::Loop:
  case Opcode::If:
  case Opcode::Else:
  case Opcode::End:
  case Opcode::Br:
  case Opcode::BrIf:
  case Opcode::BrTable:
  case Opcode::Return:
  case Opcode::Unreachable:
    return true;
  default:
    return false;
  }
}

constexpr size_t NoEdge = std::numeric_limits<size_t>::max();

/// One open control frame during the structural walk. Mirrors the
/// evaluator's frame stack; PendingEdges are branch/fall edges whose target
/// (this frame's `end` node) is not known until the frame closes.
struct OpenFrame {
  Opcode Kind = Opcode::Block;
  size_t OpenInstr = 0;
  size_t IfFalseEdge = NoEdge; ///< The if's false edge, resolved at else/end.
  std::vector<size_t> PendingEdges;
};

} // namespace

Result<ControlFlowGraph> buildCfg(const Module &M, uint32_t DefinedIndex) {
  auto Malformed = [](const std::string &Msg) {
    return Error(ErrorCode::Malformed, "analysis: " + Msg);
  };
  if (DefinedIndex >= M.Functions.size())
    return Malformed("function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Malformed("function type index out of range");
  const std::vector<Instr> &Body = Func.Body;
  const size_t N = Body.size();

  ControlFlowGraph Cfg;
  Cfg.DefinedIndex = DefinedIndex;

  // --- Partition the body into blocks (every control instruction is its own
  // single-instruction block; straight-line runs coalesce). ---
  std::vector<uint32_t> BlockOf(N, NoBlock);
  {
    BasicBlock Entry;
    Entry.IsEntry = true;
    Cfg.Blocks.push_back(std::move(Entry));
  }
  for (size_t I = 0; I < N;) {
    BasicBlock B;
    B.Id = static_cast<uint32_t>(Cfg.Blocks.size());
    B.First = I;
    if (isControl(Body[I].Op)) {
      B.End = I + 1;
      B.IsLoopInstr = Body[I].Op == Opcode::Loop;
    } else {
      size_t J = I;
      while (J < N && !isControl(Body[J].Op))
        ++J;
      B.End = J;
    }
    for (size_t K = B.First; K < B.End; ++K)
      BlockOf[K] = B.Id;
    I = B.End;
    Cfg.Blocks.push_back(std::move(B));
  }
  {
    BasicBlock Exit;
    Exit.Id = static_cast<uint32_t>(Cfg.Blocks.size());
    Exit.IsExit = true;
    Exit.First = Exit.End = N;
    Cfg.Blocks.push_back(std::move(Exit));
  }
  const uint32_t ExitId = Cfg.exitId();

  // --- Structural walk: validate the frame discipline exactly as the
  // evaluator does (same messages, same taxonomy) and emit typed edges. ---
  std::vector<OpenFrame> Frames;
  Frames.push_back(OpenFrame{Opcode::Block, 0, NoEdge, {}});

  auto addEdge = [&Cfg](uint32_t From, uint32_t To, EdgeKind Kind,
                        bool Back) -> size_t {
    Cfg.Edges.push_back(CfgEdge{From, To, Kind, Back});
    return Cfg.Edges.size() - 1;
  };
  // Continuation into the instruction at Next. An edge into an `else` means
  // a completed then-arm: it jumps past the else arm, so it is re-targeted
  // to the matching `end` when the if frame closes.
  auto addFallTo = [&](uint32_t From, size_t Next, EdgeKind Kind) {
    if (Body[Next].Op == Opcode::Else)
      Frames.back().PendingEdges.push_back(addEdge(From, NoBlock, Kind, false));
    else
      addEdge(From, BlockOf[Next], Kind, false);
  };
  // A branch to relative Depth: loops are resolved immediately (the only
  // backward edges); forward labels join at the target frame's `end`.
  auto addBranchTo = [&](uint32_t From, uint64_t Depth, EdgeKind Kind) {
    OpenFrame &Target = Frames[Frames.size() - 1 - static_cast<size_t>(Depth)];
    if (Target.Kind == Opcode::Loop)
      addEdge(From, BlockOf[Target.OpenInstr], Kind, /*Back=*/true);
    else
      Target.PendingEdges.push_back(addEdge(From, NoBlock, Kind, false));
  };

  addEdge(Cfg.entryId(), N > 0 ? BlockOf[0] : ExitId, EdgeKind::Fall, false);

  for (uint32_t BId = 1; BId < ExitId; ++BId) {
    BasicBlock &B = Cfg.Blocks[BId];
    // Mirrors the evaluator's per-instruction check: nothing may follow the
    // final `end`.
    if (Frames.empty())
      return Malformed("instruction after function body end");
    const size_t I = B.First;
    const Instr &Ins = Body[I];
    if (!isControl(Ins.Op)) {
      if (B.End < N)
        addFallTo(BId, B.End, EdgeKind::Fall);
      continue;
    }
    switch (Ins.Op) {
    case Opcode::Block:
    case Opcode::Loop: {
      if (Frames.size() >= detail::MaxControlNesting)
        return Error(ErrorCode::LimitExceeded,
                     "analysis: control nesting deeper than " +
                         std::to_string(detail::MaxControlNesting));
      Frames.push_back(OpenFrame{Ins.Op, I, NoEdge, {}});
      if (I + 1 < N)
        addFallTo(BId, I + 1,
                  Ins.Op == Opcode::Loop ? EdgeKind::LoopEntry
                                         : EdgeKind::BlockEntry);
      break;
    }
    case Opcode::If: {
      if (Frames.size() >= detail::MaxControlNesting)
        return Error(ErrorCode::LimitExceeded,
                     "analysis: control nesting deeper than " +
                         std::to_string(detail::MaxControlNesting));
      OpenFrame F{Opcode::If, I, NoEdge, {}};
      F.IfFalseEdge = addEdge(BId, NoBlock, EdgeKind::IfFalse, false);
      Frames.push_back(std::move(F));
      if (I + 1 < N)
        addFallTo(BId, I + 1, EdgeKind::IfTrue);
      break;
    }
    case Opcode::Else: {
      if (Frames.back().Kind != Opcode::If)
        return Malformed("else without if");
      OpenFrame &F = Frames.back();
      Cfg.Edges[F.IfFalseEdge].To = BId; // False path enters the else arm.
      F.IfFalseEdge = NoEdge;
      F.Kind = Opcode::Else;
      if (I + 1 < N)
        addFallTo(BId, I + 1, EdgeKind::Fall);
      break;
    }
    case Opcode::End: {
      OpenFrame F = std::move(Frames.back());
      Frames.pop_back();
      if (F.IfFalseEdge != NoEdge)
        Cfg.Edges[F.IfFalseEdge].To = BId; // If without else: skip edge.
      for (size_t EIdx : F.PendingEdges)
        Cfg.Edges[EIdx].To = BId;
      if (Frames.empty())
        addEdge(BId, ExitId, EdgeKind::Fall, false);
      else if (I + 1 < N)
        addFallTo(BId, I + 1, EdgeKind::Fall);
      break;
    }
    case Opcode::Br: {
      if (Ins.Imm0 >= Frames.size())
        return Malformed("br depth out of range");
      addBranchTo(BId, Ins.Imm0, EdgeKind::Br);
      break;
    }
    case Opcode::BrIf: {
      if (Ins.Imm0 >= Frames.size())
        return Malformed("br_if depth out of range");
      addBranchTo(BId, Ins.Imm0, EdgeKind::BrIf);
      if (I + 1 < N)
        addFallTo(BId, I + 1, EdgeKind::Fall);
      break;
    }
    case Opcode::BrTable: {
      if (Ins.Imm0 >= Frames.size())
        return Malformed("br_table default depth out of range");
      for (uint32_t Target : Ins.Table)
        if (Target >= Frames.size())
          return Malformed("br_table target arity mismatch");
      // Deduplicate fan-out per target label (the evaluator records each
      // table entry, but its joins are idempotent, so one edge per distinct
      // target is equivalent — and keeps the graph readable).
      std::set<size_t> Seen;
      auto addTarget = [&](uint64_t Depth) {
        size_t Pos = Frames.size() - 1 - static_cast<size_t>(Depth);
        if (!Seen.insert(Pos).second)
          return;
        addBranchTo(BId, Depth, EdgeKind::BrTable);
      };
      addTarget(Ins.Imm0);
      for (uint32_t Target : Ins.Table)
        addTarget(Target);
      break;
    }
    case Opcode::Return:
      addEdge(BId, ExitId, EdgeKind::Return, false);
      break;
    case Opcode::Unreachable:
      addEdge(BId, ExitId, EdgeKind::Unreachable, false);
      break;
    default:
      break; // Unreachable: isControl covers exactly the cases above.
    }
  }
  if (!Frames.empty())
    return Malformed("function body missing end instruction(s)");

  // --- Succs/Preds. Every edge target is resolved by now: pending edges
  // belong to open frames, and all frames closed. ---
  for (size_t EIdx = 0; EIdx < Cfg.Edges.size(); ++EIdx) {
    const CfgEdge &E = Cfg.Edges[EIdx];
    if (E.To == NoBlock)
      return Malformed("cfg: unresolved edge"); // Defensive; cannot happen.
    Cfg.Blocks[E.From].Succs.push_back(static_cast<uint32_t>(EIdx));
    Cfg.Blocks[E.To].Preds.push_back(static_cast<uint32_t>(EIdx));
  }

  // --- Reachability + RPO. Body order is a reverse postorder: every
  // non-back edge goes forward in the body, so ranking reachable blocks by
  // position is a valid RPO for the dominator iteration below. ---
  {
    std::vector<bool> Seen(Cfg.Blocks.size(), false);
    std::vector<uint32_t> Work{Cfg.entryId()};
    Seen[Cfg.entryId()] = true;
    while (!Work.empty()) {
      uint32_t BId = Work.back();
      Work.pop_back();
      for (uint32_t EIdx : Cfg.Blocks[BId].Succs) {
        uint32_t To = Cfg.Edges[EIdx].To;
        if (!Seen[To]) {
          Seen[To] = true;
          Work.push_back(To);
        }
      }
    }
    for (uint32_t BId = 0; BId < Cfg.Blocks.size(); ++BId)
      if (Seen[BId]) {
        Cfg.Blocks[BId].Rpo = static_cast<uint32_t>(Cfg.Rpo.size());
        Cfg.Rpo.push_back(BId);
      }
  }

  // --- Dominators: iterative Cooper-Harvey-Kennedy over RPO. ---
  {
    auto Intersect = [&Cfg](uint32_t A, uint32_t B) {
      while (A != B) {
        while (Cfg.Blocks[A].Rpo > Cfg.Blocks[B].Rpo)
          A = Cfg.Blocks[A].IDom;
        while (Cfg.Blocks[B].Rpo > Cfg.Blocks[A].Rpo)
          B = Cfg.Blocks[B].IDom;
      }
      return A;
    };
    Cfg.Blocks[Cfg.entryId()].IDom = Cfg.entryId();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t BId : Cfg.Rpo) {
        if (BId == Cfg.entryId())
          continue;
        uint32_t NewIdom = NoBlock;
        for (uint32_t EIdx : Cfg.Blocks[BId].Preds) {
          uint32_t P = Cfg.Edges[EIdx].From;
          if (Cfg.Blocks[P].IDom == NoBlock)
            continue;
          NewIdom = NewIdom == NoBlock ? P : Intersect(P, NewIdom);
        }
        if (NewIdom != NoBlock && Cfg.Blocks[BId].IDom != NewIdom) {
          Cfg.Blocks[BId].IDom = NewIdom;
          Changed = true;
        }
      }
    }
  }

  // --- Natural loops from back edges (the target of a back edge dominates
  // its source in structured wasm — labels only name enclosing frames). ---
  {
    std::map<uint32_t, std::vector<uint32_t>> BackSources;
    for (const CfgEdge &E : Cfg.Edges)
      if (E.Back && Cfg.Blocks[E.From].Rpo != NoBlock &&
          Cfg.dominates(E.To, E.From))
        BackSources[E.To].push_back(E.From);
    for (const auto &[Header, Sources] : BackSources) {
      Cfg.Blocks[Header].IsLoopHeader = true;
      Cfg.LoopHeaders.push_back(Header);
      std::vector<bool> InLoop(Cfg.Blocks.size(), false);
      InLoop[Header] = true;
      std::vector<uint32_t> Work = Sources;
      while (!Work.empty()) {
        uint32_t BId = Work.back();
        Work.pop_back();
        if (InLoop[BId])
          continue;
        InLoop[BId] = true;
        for (uint32_t EIdx : Cfg.Blocks[BId].Preds) {
          uint32_t P = Cfg.Edges[EIdx].From;
          if (Cfg.Blocks[P].Rpo != NoBlock && !InLoop[P])
            Work.push_back(P);
        }
      }
      for (uint32_t BId = 0; BId < Cfg.Blocks.size(); ++BId)
        if (InLoop[BId]) {
          ++Cfg.Blocks[BId].LoopDepth;
          Cfg.MaxLoopDepth = std::max(Cfg.MaxLoopDepth,
                                      Cfg.Blocks[BId].LoopDepth);
        }
    }
    // The frame-stack cap above already bounds loop nesting (a natural loop
    // needs an open `loop` frame), but keep the taxonomy-coded guard
    // explicit like every other untrusted-input limit.
    if (Cfg.MaxLoopDepth > detail::MaxControlNesting)
      return Error(ErrorCode::LimitExceeded,
                   "analysis: loop nesting deeper than " +
                       std::to_string(detail::MaxControlNesting));
  }

  // --- Dominates-exit: the idom chain of the synthetic exit is exactly the
  // set of blocks on every entry->exit path. ---
  if (Cfg.Blocks[ExitId].Rpo != NoBlock) {
    uint32_t Cur = ExitId;
    while (true) {
      Cfg.Blocks[Cur].DominatesExit = true;
      uint32_t Up = Cfg.Blocks[Cur].IDom;
      if (Up == NoBlock || Up == Cur)
        break;
      Cur = Up;
    }
  }

  return Cfg;
}

std::vector<bool> mustExecuteMask(const ControlFlowGraph &Cfg,
                                  size_t BodySize) {
  std::vector<bool> Mask(BodySize, false);
  if (Cfg.Blocks.empty() || Cfg.Blocks.back().Rpo == NoBlock)
    return Mask; // Exit unreachable: never claim must-evidence.
  for (const BasicBlock &B : Cfg.Blocks)
    if (B.DominatesExit && !B.IsEntry && !B.IsExit)
      for (size_t I = B.First; I < B.End && I < BodySize; ++I)
        Mask[I] = true;
  return Mask;
}

Result<CarryFixpoint> runCarryFixpoint(const Module &M, uint32_t DefinedIndex,
                                       const ControlFlowGraph &Cfg,
                                       uint32_t MaxPasses) {
  if (DefinedIndex >= M.Functions.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function type index out of range");
  const FuncType &Type = M.Types[Func.TypeIndex];

  CarryFixpoint Fix;
  // Machine snapshots at loop-header blocks, keyed by the loop instruction's
  // body index (== the carry key). A snapshot taken in round r stays valid
  // until some *earlier* loop's carry changes — and that always triggers a
  // resume at or before it, overwriting it.
  std::map<size_t, detail::Evaluator::Snapshot> HeaderSnaps;
  size_t StartInstr = 0;
  while (Fix.Rounds < MaxPasses) {
    LoopCarry Out;
    EvalOptions Opts;
    Opts.LoopCarryIn = Fix.Rounds == 0 ? nullptr : &Fix.Carry;
    Opts.LoopCarryOut = &Out;
    detail::Evaluator E(M, Func, Type, nullptr, Opts);
    if (StartInstr == 0) {
      E.prepare();
    } else {
      auto It = HeaderSnaps.find(StartInstr);
      if (It == HeaderSnaps.end())
        return Error(ErrorCode::Malformed,
                     "analysis: cfg fixpoint missing loop snapshot");
      E.restore(It->second);
      ++Fix.ResumedRounds;
    }
    for (uint32_t BId = 1; BId < Cfg.exitId(); ++BId) {
      const BasicBlock &B = Cfg.Blocks[BId];
      if (B.First < StartInstr)
        continue; // Prefix state is unchanged since its last execution.
      if (B.IsLoopInstr)
        HeaderSnaps[B.First] = E.save();
      for (size_t I = B.First; I < B.End; ++I)
        if (Result<void> S = E.stepAt(I); S.isErr())
          return S.error();
    }
    if (Result<void> S = E.finish(); S.isErr())
      return S.error();
    ++Fix.Rounds;
    // Merge the round's carry contributions (same join as the legacy
    // fixpoint's mergeCarry), tracking which loop headers changed. Branches
    // in the skipped prefix would have re-merged values already present in
    // the carry — the tag join is idempotent — so both the carry and the
    // changed set match a full re-run exactly.
    size_t Earliest = std::numeric_limits<size_t>::max();
    for (const auto &[LoopIndex, Tags] : Out) {
      auto [It, Inserted] = Fix.Carry.try_emplace(LoopIndex, Tags);
      bool HeaderChanged = Inserted;
      if (!Inserted && It->second.size() == Tags.size()) {
        for (size_t L = 0; L < Tags.size(); ++L) {
          ValueTag Merged = mergeTags(It->second[L], Tags[L]);
          if (!(Merged == It->second[L])) {
            It->second[L] = Merged;
            HeaderChanged = true;
          }
        }
      }
      if (HeaderChanged)
        Earliest = std::min(Earliest, LoopIndex);
    }
    if (Earliest == std::numeric_limits<size_t>::max())
      break;
    StartInstr = Earliest;
  }
  return Fix;
}

std::string cfgToDot(const Module &M, const ControlFlowGraph &Cfg) {
  std::string Out = "digraph fn" + std::to_string(Cfg.DefinedIndex) + " {\n";
  Out += "  node [fontname=\"monospace\"];\n";
  const Function *Func = Cfg.DefinedIndex < M.Functions.size()
                             ? &M.Functions[Cfg.DefinedIndex]
                             : nullptr;
  for (const BasicBlock &B : Cfg.Blocks) {
    Out += "  b" + std::to_string(B.Id) + " [";
    if (B.IsEntry) {
      Out += "shape=circle,label=\"entry\"";
    } else if (B.IsExit) {
      Out += "shape=doublecircle,label=\"exit\"";
    } else {
      // Built with += (not one `+` chain): GCC 12's -Wrestrict misfires on
      // literal + to_string rvalue chains under -Werror.
      std::string Label = "B";
      Label += std::to_string(B.Id);
      Label += " [";
      Label += std::to_string(B.First);
      Label += ",";
      Label += std::to_string(B.End);
      Label += ")";
      if (Func) {
        size_t Shown = 0;
        for (size_t I = B.First; I < B.End && Shown < 3; ++I, ++Shown)
          Label += std::string("\\n") + opcodeName(Func->Body[I].Op);
        if (B.End - B.First > 3)
          Label += "\\n...";
      }
      Out += "shape=box,label=\"" + Label + "\"";
      if (B.IsLoopHeader)
        Out += ",peripheries=2";
      if (B.DominatesExit)
        Out += ",style=bold";
    }
    Out += "];\n";
  }
  for (const CfgEdge &E : Cfg.Edges) {
    Out += "  b" + std::to_string(E.From) + " -> b" + std::to_string(E.To) +
           " [label=\"" + edgeKindName(E.Kind) + "\"";
    if (E.Back)
      Out += ",style=dashed";
    Out += "];\n";
  }
  Out += "}\n";
  return Out;
}

std::string cfgToJson(const ControlFlowGraph &Cfg) {
  std::string Out =
      "{\"defined_index\":" + std::to_string(Cfg.DefinedIndex) +
      ",\"blocks\":[";
  for (const BasicBlock &B : Cfg.Blocks) {
    if (B.Id != 0)
      Out += ",";
    Out += "{\"id\":" + std::to_string(B.Id) + ",\"kind\":\"";
    Out += B.IsEntry ? "entry" : B.IsExit ? "exit" : "body";
    Out += "\",\"first\":" + std::to_string(B.First) +
           ",\"end\":" + std::to_string(B.End) + ",\"rpo\":";
    Out += B.Rpo == NoBlock ? "null" : std::to_string(B.Rpo);
    Out += ",\"idom\":";
    Out += B.IDom == NoBlock ? "null" : std::to_string(B.IDom);
    Out += ",\"loop_header\":";
    Out += B.IsLoopHeader ? "true" : "false";
    Out += ",\"loop_depth\":" + std::to_string(B.LoopDepth) +
           ",\"dominates_exit\":";
    Out += B.DominatesExit ? "true" : "false";
    Out += "}";
  }
  Out += "],\"edges\":[";
  bool FirstEdge = true;
  for (const CfgEdge &E : Cfg.Edges) {
    if (!FirstEdge)
      Out += ",";
    FirstEdge = false;
    Out += "{\"from\":" + std::to_string(E.From) +
           ",\"to\":" + std::to_string(E.To) + ",\"kind\":\"" +
           edgeKindName(E.Kind) + "\",\"back\":";
    Out += E.Back ? "true" : "false";
    Out += "}";
  }
  Out += "],\"loop_headers\":[";
  for (size_t Index = 0; Index < Cfg.LoopHeaders.size(); ++Index) {
    if (Index != 0)
      Out += ",";
    Out += std::to_string(Cfg.LoopHeaders[Index]);
  }
  Out += "],\"max_loop_depth\":" + std::to_string(Cfg.MaxLoopDepth) + "}";
  return Out;
}

} // namespace analysis
} // namespace snowwhite
