//===- analysis/paths.h - Bounded acyclic path features --------------------===//
//
// WasmWalker-style control-flow path features: a small, bounded set of
// acyclic entry->exit paths through a function's CFG, rendered as a
// deterministic auxiliary token sequence ("<path:begin> <path:if-t>
// <path:loop> ... <path:end>") the dataset layer can splice next to the
// "<evid:*>" evidence tokens. The intuition (from the WasmWalker line of
// work) is that *how* control reaches a use site is itself a typing signal:
// a parameter dereferenced only behind a branch reads differently from one
// dereferenced unconditionally.
//
// Extraction is a depth-first enumeration over forward edges only — back
// edges are observed as a "<path:back>" step but never traversed, so every
// enumerated path is acyclic and the walk terminates. Three caps (paths,
// steps per path, total search steps) bound the cost on adversarial CFGs;
// truncation is explicit ("<path:cut>") and deterministic, never silent.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_PATHS_H
#define SNOWWHITE_ANALYSIS_PATHS_H

#include "analysis/cfg.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace analysis {

struct PathOptions {
  /// Complete entry->exit paths to enumerate (DFS order, so the first paths
  /// follow the earliest branch choices in body order).
  uint32_t MaxPaths = 4;
  /// Step tokens per path before the path is cut ("<path:cut>").
  uint32_t MaxStepsPerPath = 16;
  /// Total DFS edge visits before the whole enumeration stops. Guards
  /// exponential path counts on branch ladders.
  uint32_t MaxSearchSteps = 4096;
};

/// Enumerates bounded acyclic paths through Cfg and renders them as one
/// token sequence: "<path:begin>" steps ["<path:sep>" steps]... "<path:end>",
/// or the single token "<path:none>" when the exit is unreachable (the body
/// can only trap or loop forever). Pure function of the CFG — bit-identical
/// across runs and thread counts.
std::vector<std::string> extractPathTokens(const ControlFlowGraph &Cfg,
                                           const PathOptions &Opts = {});

/// The full auxiliary-token vocabulary extractPathTokens can emit, for BPE /
/// embedding-table sizing (mirrors evidenceTokenVocabulary).
const std::vector<std::string> &pathTokenVocabulary();

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_PATHS_H
