//===- analysis/gate.h - Prediction/evidence consistency gate -------------===//
//
// Checks a predicted high-level type against the statically-proven evidence
// for the same parameter or return slot. The gate is deliberately
// conservative: it only rejects predictions that *contradict* a proof (a
// plain `int` that is directly dereferenced, a pointer-to-const that is
// stored through, ...), never predictions that are merely unsupported.
// Aggregate kinds (struct/class/union), `unknown`, and functions are always
// accepted — byval aggregates are lowered to pointers by the frontend, so
// "looks like a pointer" is consistent with them.
//
// Consumers: model::Predictor filters beam candidates through this, and the
// serving ladder falls through beam -> greedy -> baseline so a gated-out
// top-1 never leaves a request unanswered.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_GATE_H
#define SNOWWHITE_ANALYSIS_GATE_H

#include "analysis/evidence.h"
#include "typelang/type.h"

namespace snowwhite {
namespace analysis {

/// Why a prediction was rejected (Consistent = accepted).
enum class GateVerdict : uint8_t {
  Consistent,
  DerefNonPointer,       ///< Primitive/enum predicted, but directly dereferenced.
  StoreThroughConst,     ///< Pointer-to-const predicted, but stored through.
  AccessWiderThanPointee, ///< Access width exceeds the pointee size.
  SignMismatch,          ///< Signed predicted but only unsigned ops (or vice versa).
  PointerFromComparison, ///< Pointer predicted for an always-0/1 return.
};

const char *gateVerdictName(GateVerdict Verdict);

struct GateOptions {
  /// Path-sensitive mode: evidence only contradicts a prediction when it
  /// lies on *every* entry->exit path (the Must* counters of
  /// ParamEvidence). Evidence confined to one branch of an `if` may sit
  /// behind a dynamic type check the binary performs — a pattern the
  /// flow-insensitive gate mis-fires on — so gating requires the
  /// contradiction to be unavoidable. ViaCallee facts never satisfy the
  /// must requirement (the call site itself may be conditional), which
  /// narrows the gate further in the conservative direction.
  bool PathSensitive = false;
};

/// Checks Predicted against the evidence. An empty QueryEvidence (no
/// summary, tags not tracked) always yields Consistent — absence of evidence
/// is never held against a prediction.
GateVerdict checkConsistency(const typelang::Type &Predicted,
                             const QueryEvidence &Evidence,
                             const GateOptions &Options = {});

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_GATE_H
