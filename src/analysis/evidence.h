//===- analysis/evidence.h - Per-parameter/return evidence summaries ------===//
//
// Compact, serializable facts that the typed-stack evaluation *proves* about
// each function parameter and return value: used-as-address, minimum/maximum
// access width, sign-suffixed-operator usage, stored-through versus
// read-only, escapes-to-callee, and the (bounded) set of call targets the
// parameter is forwarded to. analyzer.h fills these; the dataset layer turns
// them into auxiliary input tokens, and the model layer checks predicted
// types against them (analysis/gate.h).
//
// Everything is counters and small fixed-capacity sets — a summary's size is
// bounded regardless of the input binary (see MaxCallTargets), so hostile
// inputs cannot blow it up.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_EVIDENCE_H
#define SNOWWHITE_ANALYSIS_EVIDENCE_H

#include "wasm/types.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snowwhite {
namespace analysis {

/// Cap on the per-parameter call-target set; beyond this the set stops
/// growing and CallTargetsOverflow is latched.
inline constexpr size_t MaxCallTargets = 8;

/// Evidence about one function parameter, accumulated over all reachable
/// uses. Counters saturate at uint32_t max.
struct ParamEvidence {
  wasm::ValType LowType = wasm::ValType::I32; ///< The wasm-level type.

  // Address usage: loads/stores whose address operand traces to this
  // parameter. "Direct" means the address *is* the parameter value;
  // "Derived" means it was computed from it (p + offset, scaled index, ...).
  uint32_t DirectLoads = 0;
  uint32_t DirectStores = 0;
  uint32_t DerivedLoads = 0;
  uint32_t DerivedStores = 0;
  /// Narrowest / widest access (bytes) through any address tracing to this
  /// parameter. 0 when never used as an address.
  uint8_t MinAccessBytes = 0;
  uint8_t MaxAccessBytes = 0;
  /// Sub-width loads through this parameter, split by extension kind.
  uint32_t SignExtLoads = 0;
  uint32_t ZeroExtLoads = 0;

  // Value usage: numeric instructions consuming a value tracing to this
  // parameter. Sign-suffixed wasm operators are strong signedness signals.
  uint32_t SignedOps = 0;    ///< div_s/rem_s/shr_s/extend*_s/trunc*_s/...
  uint32_t UnsignedOps = 0;  ///< div_u/rem_u/shr_u/extend_u/trunc*_u/...
  uint32_t SignedCmps = 0;   ///< lt_s/gt_s/le_s/ge_s.
  uint32_t UnsignedCmps = 0; ///< lt_u/gt_u/le_u/ge_u.
  uint32_t FloatOps = 0;     ///< Float arithmetic on the (float) parameter.
  uint32_t Conditions = 0;   ///< Consumed as an if/br_if/select condition.

  // Escape behaviour.
  uint32_t EscapesToCalls = 0;  ///< Passed as an argument to a direct call.
  uint32_t EscapesIndirect = 0; ///< Passed to call_indirect.
  uint32_t StoredToMemory = 0;  ///< The parameter *value* stored somewhere.

  // Path-sensitive ("must") counters: the subset of the events above whose
  // instruction lies on *every* entry->exit path of the body (its basic
  // block dominates the CFG's synthetic exit — see analysis/cfg.h). The
  // serving gate only treats evidence as contradicting a prediction when it
  // is unavoidable, i.e. when the matching must-counter is non-zero.
  uint32_t MustDirectLoads = 0;
  uint32_t MustDirectStores = 0;
  uint32_t MustDerivedLoads = 0;
  uint32_t MustDerivedStores = 0;
  uint32_t MustSignedOps = 0;
  uint32_t MustUnsignedOps = 0;

  // Bottom-up call-graph facts: a callee that receives this parameter
  // dereferences / stores through its corresponding formal.
  bool DereferencedViaCallee = false;
  bool StoredViaCallee = false;

  /// Function-space indices of direct-call targets receiving this parameter
  /// (sorted, deduplicated, capped at MaxCallTargets).
  std::vector<uint32_t> CallTargets;
  bool CallTargetsOverflow = false;

  bool usedAsAddress() const {
    return DirectLoads + DirectStores + DerivedLoads + DerivedStores > 0;
  }
  bool directlyDereferenced() const {
    return DirectLoads + DirectStores > 0 || DereferencedViaCallee;
  }
  /// True when memory reachable from this parameter is written.
  bool storedThrough() const {
    return DirectStores + DerivedStores > 0 || StoredViaCallee;
  }
  /// Must-variants: the fact holds on every entry->exit path. Deliberately
  /// intraprocedural — a ViaCallee fact may sit on a conditional call, so it
  /// never upgrades to "must".
  bool mustUsedAsAddress() const {
    return MustDirectLoads + MustDirectStores + MustDerivedLoads +
               MustDerivedStores >
           0;
  }
  bool mustDirectlyDereferenced() const {
    return MustDirectLoads + MustDirectStores > 0;
  }
  bool mustStoredThrough() const {
    return MustDirectStores + MustDerivedStores > 0;
  }
};

/// Evidence about the return value: which instruction categories produce the
/// returned values over all reachable return edges.
struct ReturnEvidence {
  wasm::ValType LowType = wasm::ValType::I32;
  uint32_t TotalReturns = 0;
  uint32_t FromLoad = 0;
  uint32_t FromComparison = 0;
  uint32_t FromConst = 0;
  uint32_t FromCall = 0;
  uint32_t FromParam = 0; ///< Returned value is a parameter passed through.
  uint32_t FromOther = 0;
  /// When any return traces to a load: narrowest/widest source load.
  uint8_t MinLoadBytes = 0;
  uint8_t MaxLoadBytes = 0;
  uint32_t SignExtLoads = 0;
};

/// Summary for one defined function.
struct FunctionSummary {
  uint32_t DefinedIndex = 0;
  std::vector<ParamEvidence> Params;
  bool HasReturn = false;
  ReturnEvidence Ret;
  /// False when tag tracking was disabled (MaxTrackedLocals exceeded) — the
  /// counters are then all zero and consumers must not treat absence of
  /// evidence as evidence of absence.
  bool TagsTracked = true;
  /// Fixpoint passes the loop-carry iteration took to stabilize (or the cap).
  uint32_t FixpointPasses = 0;
};

/// Evidence for one prediction query (one parameter or the return slot).
struct QueryEvidence {
  std::optional<ParamEvidence> Param;
  std::optional<ReturnEvidence> Ret;
};

/// Whole-module analysis result.
struct ModuleSummary {
  std::vector<FunctionSummary> Functions; ///< Indexed by defined index.
  /// Direct-call edges: Callees[i] lists the function-space targets called
  /// by defined function i (sorted, deduplicated).
  std::vector<std::vector<uint32_t>> Callees;
  /// Bottom-up propagation passes the call-graph closure took (or the cap).
  uint32_t CallGraphPasses = 0;
};

/// Renders the evidence as a short, stable sequence of auxiliary dataset
/// tokens (e.g. "<evid:ptr>", "<evid:w8>", "<evid:const>"). Order is fixed
/// so the token stream is deterministic.
std::vector<std::string> evidenceTokens(const ParamEvidence &E);
std::vector<std::string> evidenceTokens(const ReturnEvidence &E);

/// The full auxiliary-token vocabulary evidenceTokens can emit, for BPE /
/// embedding-table sizing.
const std::vector<std::string> &evidenceTokenVocabulary();

/// Hand-rolled JSON rendering (no external deps) for `snowwhite analyze`.
std::string toJson(const ParamEvidence &E);
std::string toJson(const ReturnEvidence &E);
std::string toJson(const FunctionSummary &S);
std::string toJson(const ModuleSummary &S);

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_EVIDENCE_H
