//===- analysis/eval_core.h - Shared abstract-evaluator core ---------------===//
//
// The per-function typed-stack evaluator behind analysis::evaluateFunction,
// exposed as an incremental stepping machine so other analyses can drive the
// *same* transfer functions instruction by instruction. Today it has two
// drivers:
//
//  * evaluateFunction (stack_eval.cpp): prepare() + stepAt(0..N) + finish();
//  * the CFG-hosted worklist fixpoint (cfg.cpp): steps basic blocks in body
//    order, snapshotting the machine state at loop headers so later fixpoint
//    rounds can resume from the earliest loop whose carry state changed
//    instead of re-running the whole body.
//
// Because both drivers execute the identical step() transfer function over
// the identical instruction sequence, their accept/reject verdicts and the
// evidence they feed an EvalSink are bit-identical by construction; the
// differential tests and `snowwhite_fuzz --cfg` enforce this.
//
// This header is an internal contract between analysis/*.cpp translation
// units (namespace detail); everything consumer-facing lives in
// stack_eval.h.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_EVAL_CORE_H
#define SNOWWHITE_ANALYSIS_EVAL_CORE_H

#include "analysis/stack_eval.h"
#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace snowwhite {
namespace analysis {
namespace detail {

/// Mirrors wasm/validate.cpp's MaxControlNesting; the evaluator, the CFG
/// builder, and the validator must reject the same nesting depths for the
/// differential checks to hold.
constexpr size_t MaxControlNesting = 1024;

/// The typed-stack abstract interpreter for one function body. See the file
/// banner for the driver contract: prepare() once (or restore() from a
/// Snapshot), stepAt() each instruction in body order, finish() at the end.
class Evaluator {
public:
  /// One control frame (function body, block, loop, if, else). Public so
  /// Snapshot can carry the frame stack across fixpoint rounds.
  struct Frame {
    wasm::Opcode Kind = wasm::Opcode::Block;
    std::vector<wasm::ValType> Results;
    size_t StackHeight = 0;
    bool Unreachable = false;
    size_t InstrIndex = 0; ///< Body index of the opening instruction.
    std::vector<ValueTag> EntryLocals; ///< Local tags at frame entry.
    bool HasOutLocals = false;
    std::vector<ValueTag> OutLocals; ///< Join over edges to the end label.
    bool HasResultTags = false;
    std::vector<ValueTag> ResultTags; ///< Join of result tags over edges.
  };

  /// Complete machine state at an instruction boundary. Restoring a snapshot
  /// into a fresh Evaluator (with possibly different EvalOptions carry maps)
  /// resumes execution exactly where save() was called.
  struct Snapshot {
    std::vector<AbstractValue> Stack;
    std::vector<ValueTag> LocalTags;
    std::vector<Frame> Frames;
  };

  Evaluator(const wasm::Module &Mod, const wasm::Function &F,
            const wasm::FuncType &FT, EvalSink *S, const EvalOptions &Opts)
      : M(Mod), Func(F), Type(FT), Sink(S), Options(Opts) {}

  /// prepare + step every instruction + finish. What evaluateFunction runs.
  Result<void> run();

  /// Initializes local types/tags and pushes the function frame.
  void prepare();

  /// Executes the instruction at body index Index.
  Result<void> stepAt(size_t Index);

  /// Final check after the last instruction: every frame must be closed.
  Result<void> finish();

  Snapshot save() const;
  void restore(const Snapshot &S);

private:
  Result<void> fail(const std::string &Message) {
    return Error(ErrorCode::Malformed, "analysis: " + Message);
  }
  Result<void> failLimit(const std::string &Message) {
    return Error(ErrorCode::LimitExceeded, "analysis: " + Message);
  }

  /// Initializes LocalTypes/TrackTags (deterministic; shared by prepare and
  /// restore).
  void initLocals();

  bool reachable() const { return !Frames.back().Unreachable; }
  void pushFrame(wasm::Opcode Kind, std::vector<wasm::ValType> Results,
                 size_t InstrIndex);
  void pushValue(wasm::ValType T, ValueTag Tag = {});
  void pushUnknown();
  bool popExpect(wasm::ValType T, AbstractValue &Out);
  std::optional<AbstractValue> popAny();
  const std::vector<wasm::ValType> *
  labelTypes(uint64_t Depth, std::vector<wasm::ValType> &LoopEmpty);
  void markUnreachable();
  void mergeLocalsInto(bool &Has, std::vector<ValueTag> &Into,
                       const std::vector<ValueTag> &From);
  void recordBranchLocals(uint64_t Depth);
  void recordBranchResults(uint64_t Depth,
                           const std::vector<AbstractValue> &Values);
  bool popSequence(const std::vector<wasm::ValType> &Types,
                   std::vector<AbstractValue> &Out);
  void noteReturnValues(uint64_t Depth,
                        const std::vector<AbstractValue> &Values);
  Result<void> checkAlignment(const wasm::Instr &I, unsigned Bytes);
  Result<void> checkLoad(const wasm::Instr &I, wasm::ValType Pushed);
  Result<void> checkStore(const wasm::Instr &I, wasm::ValType Stored);
  Result<void> checkUnary(const wasm::Instr &I, wasm::ValType In,
                          wasm::ValType Out, Origin Org);
  Result<void> checkBinary(const wasm::Instr &I, wasm::ValType In,
                           wasm::ValType Out, Origin Org);
  Result<void> step(const wasm::Instr &I, size_t Index);

  const wasm::Module &M;
  const wasm::Function &Func;
  const wasm::FuncType &Type;
  EvalSink *Sink;
  const EvalOptions &Options;
  bool TrackTags = false;
  std::vector<wasm::ValType> LocalTypes;
  std::vector<ValueTag> LocalTags;
  std::vector<AbstractValue> Stack;
  std::vector<Frame> Frames;
};

} // namespace detail
} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_EVAL_CORE_H
