//===- analysis/paths.cpp - Bounded acyclic path features ------------------===//

#include "analysis/paths.h"

namespace snowwhite {
namespace analysis {

namespace {

/// Step token for traversing Edge, or nullptr when the edge carries no
/// branching information (straight-line continuation and `block` entry).
const char *stepToken(const CfgEdge &Edge) {
  if (Edge.Back)
    return "<path:back>";
  switch (Edge.Kind) {
  case EdgeKind::Fall:
  case EdgeKind::BlockEntry:
    return nullptr;
  case EdgeKind::LoopEntry:
    return "<path:loop>";
  case EdgeKind::IfTrue:
    return "<path:if-t>";
  case EdgeKind::IfFalse:
    return "<path:if-f>";
  case EdgeKind::Br:
    return "<path:br>";
  case EdgeKind::BrIf:
    return "<path:brif>";
  case EdgeKind::BrTable:
    return "<path:table>";
  case EdgeKind::Return:
    return "<path:ret>";
  case EdgeKind::Unreachable:
    return "<path:trap>";
  }
  return nullptr;
}

} // namespace

std::vector<std::string> extractPathTokens(const ControlFlowGraph &Cfg,
                                           const PathOptions &Opts) {
  // One DFS frame per block on the current path prefix. Steps is the token
  // prefix; each frame remembers the prefix length to rewind to when a
  // successor subtree is done.
  struct DfsFrame {
    uint32_t Block = 0;
    size_t NextSucc = 0;
    size_t StepsAtEntry = 0;
  };

  const uint32_t Exit = Cfg.exitId();
  std::vector<std::vector<std::string>> Paths;
  std::vector<std::string> Steps;
  std::vector<DfsFrame> Stack;
  Stack.push_back({Cfg.entryId(), 0, 0});
  uint32_t SearchSteps = 0;
  bool Exhausted = false;

  while (!Stack.empty() && !Exhausted && Paths.size() < Opts.MaxPaths) {
    DfsFrame &F = Stack.back();
    const BasicBlock &B = Cfg.Blocks[F.Block];
    if (F.NextSucc >= B.Succs.size()) {
      Steps.resize(F.StepsAtEntry);
      Stack.pop_back();
      continue;
    }
    const CfgEdge &Edge = Cfg.Edges[B.Succs[F.NextSucc++]];
    if (++SearchSteps > Opts.MaxSearchSteps) {
      Exhausted = true;
      break;
    }
    size_t StepsBefore = Steps.size();
    if (const char *Tok = stepToken(Edge)) {
      if (Steps.size() >= Opts.MaxStepsPerPath) {
        // Prefix is at the cap: record the cut path once and prune the
        // whole subtree below this block (every extension would cut at the
        // same prefix, producing duplicate paths).
        std::vector<std::string> Cut = Steps;
        Cut.push_back("<path:cut>");
        Paths.push_back(std::move(Cut));
        Steps.resize(F.StepsAtEntry);
        Stack.pop_back();
        continue;
      }
      Steps.push_back(Tok);
    }
    if (Edge.Back) {
      // Observed, never traversed — the path stays acyclic. The token stays
      // in the prefix: every path through a loop header records the retreat.
      continue;
    }
    if (Edge.To == Exit) {
      Paths.push_back(Steps);
      Steps.resize(StepsBefore);
      continue;
    }
    // The child rewinds to StepsBefore when its subtree is done, removing
    // this edge's step token along with everything the subtree appended.
    Stack.push_back({Edge.To, 0, StepsBefore});
  }

  if (Paths.empty())
    return {"<path:none>"};

  std::vector<std::string> Tokens;
  Tokens.push_back("<path:begin>");
  for (size_t P = 0; P < Paths.size(); ++P) {
    if (P != 0)
      Tokens.push_back("<path:sep>");
    for (std::string &S : Paths[P])
      Tokens.push_back(std::move(S));
  }
  Tokens.push_back("<path:end>");
  return Tokens;
}

const std::vector<std::string> &pathTokenVocabulary() {
  static const std::vector<std::string> Vocabulary = {
      "<path:begin>", "<path:sep>",  "<path:end>",  "<path:none>",
      "<path:cut>",   "<path:loop>", "<path:back>", "<path:if-t>",
      "<path:if-f>",  "<path:br>",   "<path:brif>", "<path:table>",
      "<path:ret>",   "<path:trap>",
  };
  return Vocabulary;
}

} // namespace analysis
} // namespace snowwhite
