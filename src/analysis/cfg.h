//===- analysis/cfg.h - Per-function control-flow graph --------------------===//
//
// An explicit control-flow graph over a WebAssembly function body, derived
// from the same control-frame discipline the typed-stack evaluator
// (stack_eval.cpp) walks implicitly. It is the shared analysis IR:
//
//  * basic blocks partition the body in body order (every control
//    instruction is its own single-instruction block; straight-line runs
//    coalesce), plus one synthetic entry and one synthetic exit block;
//  * typed edges for block/loop/if/else/br/br_if/br_table/return/
//    unreachable, with back edges (branches to a `loop` header) flagged;
//  * reverse-postorder numbering — body order *is* a reverse postorder for
//    structured wasm, because every non-back edge goes forward in the body
//    (a property the test suite checks on every corpus function);
//  * an iterative dominator tree (Cooper-Harvey-Kennedy over RPO), natural
//    loops from back edges, and a per-block dominates-exit bit that powers
//    the path-sensitive ("must") evidence used by the serving gate;
//  * a CFG-hosted loop-carry fixpoint (runCarryFixpoint) that replaces the
//    analyzer's re-run-the-whole-body rounds: the machine state is
//    snapshotted at every loop header, and each round after the first
//    resumes from the earliest loop whose carry changed. Its rounds, carry
//    map, and therefore every downstream evidence summary are bit-identical
//    to the legacy fixpoint by construction (same Evaluator core, and skipped
//    prefixes can only re-merge values that are already in the carry — the
//    tag join is idempotent). `snowwhite_fuzz --cfg` and the cfg tests
//    differentially enforce this.
//
// Construction mirrors the evaluator's structural rejections exactly (same
// taxonomy codes, same bounded-nesting cap): buildCfg never rejects a body
// the evaluator accepts, and anything buildCfg accepts but the evaluator
// rejects is caught by the fixpoint rounds, which execute the evaluator
// core — so the accept/reject verdict of the CFG-hosted analysis equals the
// evaluator's on every input.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_ANALYSIS_CFG_H
#define SNOWWHITE_ANALYSIS_CFG_H

#include "analysis/stack_eval.h"
#include "support/result.h"
#include "wasm/module.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snowwhite {
namespace analysis {

/// Sentinel block id ("none").
constexpr uint32_t NoBlock = 0xffffffffu;

/// Why an edge exists. One enumerator per control construct the tentpole
/// names; `Fall` covers straight-line continuation (including a completed
/// then-arm or inner `end` falling to its join point).
enum class EdgeKind : uint8_t {
  Fall,        ///< Straight-line fall-through.
  BlockEntry,  ///< `block` entering its body.
  LoopEntry,   ///< `loop` entering its body (the loop header).
  IfTrue,      ///< `if` taken edge into the then-arm.
  IfFalse,     ///< `if` false edge to the `else` arm (or past `end`).
  Br,          ///< Unconditional `br`.
  BrIf,        ///< `br_if` taken edge (the fall-through edge is Fall).
  BrTable,     ///< One `br_table` fan-out target (deduplicated per target).
  Return,      ///< `return` to the exit block.
  Unreachable, ///< `unreachable` trap edge to the exit block.
};

const char *edgeKindName(EdgeKind Kind);

struct CfgEdge {
  uint32_t From = NoBlock;
  uint32_t To = NoBlock;
  EdgeKind Kind = EdgeKind::Fall;
  bool Back = false; ///< Branch to a `loop` header (the only backward edges).
};

struct BasicBlock {
  uint32_t Id = 0;
  size_t First = 0; ///< Body index of the first instruction.
  size_t End = 0;   ///< One past the last instruction ([First, End)).
  bool IsEntry = false;
  bool IsExit = false;
  bool IsLoopInstr = false;  ///< Single-instruction `loop` block.
  bool IsLoopHeader = false; ///< Target of at least one back edge.
  std::vector<uint32_t> Succs; ///< Edge indices out of this block.
  std::vector<uint32_t> Preds; ///< Edge indices into this block.
  uint32_t Rpo = NoBlock;  ///< Reverse-postorder number; NoBlock if dead.
  uint32_t IDom = NoBlock; ///< Immediate dominator; NoBlock if dead.
  uint32_t LoopDepth = 0;  ///< Natural-loop nesting depth.
  bool DominatesExit = false; ///< Lies on every entry->exit path.
};

struct ControlFlowGraph {
  uint32_t DefinedIndex = 0;
  /// Blocks[0] is the synthetic entry, Blocks.back() the synthetic exit;
  /// everything between partitions the body in body order.
  std::vector<BasicBlock> Blocks;
  std::vector<CfgEdge> Edges;
  /// Reachable block ids in reverse postorder (== body order).
  std::vector<uint32_t> Rpo;
  /// Loop-header block ids in body order.
  std::vector<uint32_t> LoopHeaders;
  uint32_t MaxLoopDepth = 0;

  uint32_t entryId() const { return 0; }
  uint32_t exitId() const {
    return static_cast<uint32_t>(Blocks.size()) - 1;
  }
  /// True when A dominates B (both reachable; reflexive).
  bool dominates(uint32_t A, uint32_t B) const;
};

/// Builds the CFG for defined function DefinedIndex. Rejects exactly the
/// structural malformations the evaluator rejects (same messages, same
/// Malformed/LimitExceeded taxonomy); typing errors are left to the
/// evaluator core driven over the graph.
Result<ControlFlowGraph> buildCfg(const wasm::Module &M,
                                  uint32_t DefinedIndex);

/// Per-instruction "executes on every entry->exit path" mask (true iff the
/// containing block dominates the synthetic exit). All-false when the exit
/// is unreachable (the body can only trap or loop forever) — the gate then
/// never claims must-evidence, which is the conservative direction.
std::vector<bool> mustExecuteMask(const ControlFlowGraph &Cfg,
                                  size_t BodySize);

/// Result of the CFG-hosted loop-carry fixpoint.
struct CarryFixpoint {
  LoopCarry Carry;
  uint32_t Rounds = 0;
  /// Rounds (after the first) that resumed from a loop-header snapshot
  /// instead of re-running the whole body. Diagnostic only.
  uint32_t ResumedRounds = 0;
};

/// Runs the loop-carry fixpoint over the CFG: each round drives the shared
/// evaluator core block-by-block in body (== reverse-post) order with the
/// previous round's carry frozen, snapshotting the machine at loop headers;
/// subsequent rounds resume from the earliest header whose carry changed.
/// Rounds and the final carry are bit-identical to the legacy
/// re-run-the-body fixpoint with the same MaxPasses cap.
Result<CarryFixpoint> runCarryFixpoint(const wasm::Module &M,
                                       uint32_t DefinedIndex,
                                       const ControlFlowGraph &Cfg,
                                       uint32_t MaxPasses);

/// Graphviz rendering (one digraph) for offline triage.
std::string cfgToDot(const wasm::Module &M, const ControlFlowGraph &Cfg);

/// JSON rendering: blocks (with rpo/idom/loop/dominates-exit facts), edges,
/// loop headers.
std::string cfgToJson(const ControlFlowGraph &Cfg);

} // namespace analysis
} // namespace snowwhite

#endif // SNOWWHITE_ANALYSIS_CFG_H
