#include "analysis/stack_eval.h"

#include "analysis/eval_core.h"

#include <algorithm>
#include <optional>
#include <string>

namespace snowwhite {
namespace analysis {

using wasm::BlockType;
using wasm::FuncType;
using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;
using wasm::ValType;

EvalSink::~EvalSink() = default;

ValueTag mergeTags(const ValueTag &A, const ValueTag &B) {
  ValueTag Out;
  if (A.Param == B.Param) {
    Out.Param = A.Param;
    Out.Direct = A.Direct && B.Direct;
  }
  if (A.Org == B.Org) {
    Out.Org = A.Org;
    Out.OrgBytes = A.OrgBytes == B.OrgBytes ? A.OrgBytes : 0;
    Out.OrgSigned = A.OrgSigned && B.OrgSigned;
  }
  return Out;
}

namespace {

/// Derived-value tag: the result of a numeric instruction traces to a
/// parameter iff exactly one parameter flows in (or both operands trace to
/// the same one). Direct-ness never survives computation.
ValueTag derivedTag(Origin Org, const ValueTag &A, const ValueTag &B) {
  ValueTag Out;
  Out.Org = Org;
  if (A.Param != NoParam && (B.Param == NoParam || B.Param == A.Param))
    Out.Param = A.Param;
  else if (B.Param != NoParam && A.Param == NoParam)
    Out.Param = B.Param;
  return Out;
}

ValueTag derivedTag(Origin Org, const ValueTag &A) {
  ValueTag Out;
  Out.Org = Org;
  Out.Param = A.Param;
  return Out;
}

struct LoadShape {
  unsigned Bytes;
  bool SignExtending;
};

LoadShape loadShape(Opcode Op) {
  switch (Op) {
  case Opcode::I32Load8S:
    return {1, true};
  case Opcode::I32Load8U:
    return {1, false};
  case Opcode::I32Load16S:
    return {2, true};
  case Opcode::I32Load16U:
    return {2, false};
  case Opcode::I64Load8S:
    return {1, true};
  case Opcode::I64Load8U:
    return {1, false};
  case Opcode::I64Load16S:
    return {2, true};
  case Opcode::I64Load16U:
    return {2, false};
  case Opcode::I64Load32S:
    return {4, true};
  case Opcode::I64Load32U:
    return {4, false};
  case Opcode::I64Load:
  case Opcode::F64Load:
    return {8, false};
  default: // i32.load, f32.load
    return {4, false};
  }
}

unsigned storeBytes(Opcode Op) {
  switch (Op) {
  case Opcode::I32Store8:
  case Opcode::I64Store8:
    return 1;
  case Opcode::I32Store16:
  case Opcode::I64Store16:
    return 2;
  case Opcode::I64Store:
  case Opcode::F64Store:
    return 8;
  default: // i32.store, f32.store, i64.store32
    return 4;
  }
}

} // namespace

namespace detail {

void Evaluator::initLocals() {
  LocalTypes = Type.Params;
  for (ValType Local : Func.flattenedLocals())
    LocalTypes.push_back(Local);
  TrackTags = LocalTypes.size() <= MaxTrackedLocals;
}

void Evaluator::prepare() {
  initLocals();
  if (TrackTags) {
    LocalTags.assign(LocalTypes.size(), {});
    for (uint32_t Index = 0; Index < Type.Params.size(); ++Index) {
      LocalTags[Index].Param = Index;
      LocalTags[Index].Direct = true;
    }
    // Non-parameter locals are zero-initialized by the spec.
    for (size_t Index = Type.Params.size(); Index < LocalTags.size(); ++Index)
      LocalTags[Index].Org = Origin::Const;
  }
  pushFrame(Opcode::Block, Type.Results, /*InstrIndex=*/0);
}

Result<void> Evaluator::stepAt(size_t Index) {
  return step(Func.Body[Index], Index);
}

Result<void> Evaluator::finish() {
  if (!Frames.empty())
    return fail("function body missing end instruction(s)");
  return {};
}

Result<void> Evaluator::run() {
  prepare();
  for (size_t Index = 0; Index < Func.Body.size(); ++Index) {
    Result<void> Status = stepAt(Index);
    if (Status.isErr())
      return Status;
  }
  return finish();
}

Evaluator::Snapshot Evaluator::save() const {
  return Snapshot{Stack, LocalTags, Frames};
}

void Evaluator::restore(const Snapshot &S) {
  initLocals();
  Stack = S.Stack;
  LocalTags = S.LocalTags;
  Frames = S.Frames;
}

void Evaluator::pushFrame(Opcode Kind, std::vector<ValType> Results,
                          size_t InstrIndex) {
  Frame F;
  F.Kind = Kind;
  F.Results = std::move(Results);
  F.StackHeight = Stack.size();
  F.InstrIndex = InstrIndex;
  if (TrackTags)
    F.EntryLocals = LocalTags;
  Frames.push_back(std::move(F));
}

void Evaluator::pushValue(ValType T, ValueTag Tag) {
  Stack.push_back(AbstractValue{T, true, Tag});
}

void Evaluator::pushUnknown() {
  Stack.push_back(AbstractValue{ValType::I32, false, {}});
}

/// Pops expecting T. Mirrors the validator's popExpect; fills Out with the
/// popped value (a polymorphic placeholder when popping below an
/// unreachable frame base).
bool Evaluator::popExpect(ValType T, AbstractValue &Out) {
  Frame &F = Frames.back();
  if (Stack.size() == F.StackHeight) {
    Out = AbstractValue{T, false, {}};
    return F.Unreachable;
  }
  Out = Stack.back();
  Stack.pop_back();
  return !Out.Known || Out.Type == T;
}

/// Pops any value; nullopt only when the stack is empty at a reachable
/// frame base (the validator's error case).
std::optional<AbstractValue> Evaluator::popAny() {
  Frame &F = Frames.back();
  if (Stack.size() == F.StackHeight) {
    if (F.Unreachable)
      return AbstractValue{ValType::I32, false, {}};
    return std::nullopt;
  }
  AbstractValue Out = Stack.back();
  Stack.pop_back();
  return Out;
}

const std::vector<ValType> *
Evaluator::labelTypes(uint64_t Depth, std::vector<ValType> &LoopEmpty) {
  if (Depth >= Frames.size())
    return nullptr;
  Frame &F = Frames[Frames.size() - 1 - Depth];
  if (F.Kind == Opcode::Loop) {
    LoopEmpty.clear();
    return &LoopEmpty;
  }
  return &F.Results;
}

void Evaluator::markUnreachable() {
  Frame &F = Frames.back();
  Stack.resize(F.StackHeight);
  F.Unreachable = true;
}

void Evaluator::mergeLocalsInto(bool &Has, std::vector<ValueTag> &Into,
                                const std::vector<ValueTag> &From) {
  if (!Has) {
    Into = From;
    Has = true;
    return;
  }
  for (size_t Index = 0; Index < Into.size(); ++Index)
    Into[Index] = mergeTags(Into[Index], From[Index]);
}

/// Records the local-tag state flowing along a branch to relative Depth:
/// loop headers feed the next fixpoint pass's carry state, forward labels
/// feed the join at their `end`.
void Evaluator::recordBranchLocals(uint64_t Depth) {
  if (!TrackTags || !reachable())
    return;
  Frame &Target = Frames[Frames.size() - 1 - static_cast<size_t>(Depth)];
  if (Target.Kind == Opcode::Loop) {
    if (!Options.LoopCarryOut)
      return;
    auto [It, Inserted] =
        Options.LoopCarryOut->try_emplace(Target.InstrIndex, LocalTags);
    if (!Inserted)
      for (size_t Index = 0; Index < It->second.size(); ++Index)
        It->second[Index] = mergeTags(It->second[Index], LocalTags[Index]);
    return;
  }
  mergeLocalsInto(Target.HasOutLocals, Target.OutLocals, LocalTags);
}

/// Records result-value tags flowing to a forward label's end.
void Evaluator::recordBranchResults(uint64_t Depth,
                                    const std::vector<AbstractValue> &Values) {
  if (!reachable())
    return;
  Frame &Target = Frames[Frames.size() - 1 - static_cast<size_t>(Depth)];
  if (Target.Kind == Opcode::Loop)
    return;
  std::vector<ValueTag> Tags;
  Tags.reserve(Values.size());
  for (const AbstractValue &Value : Values)
    Tags.push_back(Value.Tag);
  if (!Target.HasResultTags) {
    Target.ResultTags = std::move(Tags);
    Target.HasResultTags = true;
  } else {
    for (size_t Index = 0; Index < Target.ResultTags.size(); ++Index)
      Target.ResultTags[Index] =
          mergeTags(Target.ResultTags[Index], Tags[Index]);
  }
}

/// Pops the value sequence Types (in reverse), collecting the popped
/// values in source order. False on a type mismatch.
bool Evaluator::popSequence(const std::vector<ValType> &Types,
                            std::vector<AbstractValue> &Out) {
  Out.assign(Types.size(), {});
  for (size_t Index = Types.size(); Index-- > 0;)
    if (!popExpect(Types[Index], Out[Index]))
      return false;
  return true;
}

/// Branch operands leaving through the function frame are return values.
void Evaluator::noteReturnValues(uint64_t Depth,
                                 const std::vector<AbstractValue> &Values) {
  if (!Sink || !reachable())
    return;
  if (static_cast<size_t>(Depth) + 1 != Frames.size())
    return;
  for (const AbstractValue &Value : Values)
    Sink->onReturn(Value);
}

/// Memarg alignment rule, mirroring the validator: the alignment exponent
/// must not exceed log2(natural access width).
Result<void> Evaluator::checkAlignment(const Instr &I, unsigned Bytes) {
  unsigned MaxExp = 0;
  for (; Bytes > 1; Bytes >>= 1)
    ++MaxExp;
  if (I.Imm1 > MaxExp)
    return fail("alignment exceeds natural alignment");
  return {};
}

Result<void> Evaluator::checkLoad(const Instr &I, ValType Pushed) {
  if (M.Memories.empty())
    return fail("memory access without memory");
  if (Result<void> Status = checkAlignment(I, loadShape(I.Op).Bytes);
      Status.isErr())
    return Status;
  AbstractValue Addr;
  if (!popExpect(ValType::I32, Addr))
    return fail("load address must be i32");
  LoadShape Shape = loadShape(I.Op);
  if (Sink && reachable())
    Sink->onLoad(I, Addr, Shape.Bytes, Shape.SignExtending);
  ValueTag Tag;
  Tag.Org = Origin::Load;
  Tag.OrgBytes = static_cast<uint8_t>(Shape.Bytes);
  Tag.OrgSigned = Shape.SignExtending;
  pushValue(Pushed, Tag);
  return {};
}

Result<void> Evaluator::checkStore(const Instr &I, ValType Stored) {
  if (M.Memories.empty())
    return fail("memory access without memory");
  if (Result<void> Status = checkAlignment(I, storeBytes(I.Op));
      Status.isErr())
    return Status;
  AbstractValue Value, Addr;
  if (!popExpect(Stored, Value))
    return fail("store value type mismatch");
  if (!popExpect(ValType::I32, Addr))
    return fail("store address must be i32");
  if (Sink && reachable())
    Sink->onStore(I, Addr, Value, storeBytes(I.Op));
  return {};
}

Result<void> Evaluator::checkUnary(const Instr &I, ValType In, ValType Out,
                                   Origin Org) {
  AbstractValue Operand;
  if (!popExpect(In, Operand))
    return fail("unary operand type mismatch");
  if (Sink && reachable())
    Sink->onUnary(I, Operand);
  pushValue(Out, derivedTag(Org, Operand.Tag));
  return {};
}

Result<void> Evaluator::checkBinary(const Instr &I, ValType In, ValType Out,
                                    Origin Org) {
  AbstractValue Rhs, Lhs;
  if (!popExpect(In, Rhs) || !popExpect(In, Lhs))
    return fail("binary operand type mismatch");
  if (Sink && reachable())
    Sink->onBinary(I, Lhs, Rhs);
  pushValue(Out, derivedTag(Org, Lhs.Tag, Rhs.Tag));
  return {};
}

Result<void> Evaluator::step(const Instr &I, size_t Index) {
  // Mirrors the validator: nothing may follow the final `end`.
  if (Frames.empty())
    return fail("instruction after function body end");

  if (Sink)
    Sink->onInstr(Index, I, Stack, Frames.back().Unreachable);

  uint8_t Byte = opcodeByte(I.Op);

  // Numeric instruction groups by opcode byte range — the same dispatch
  // table as the validator, so the two agree on every opcode's typing.
  if (Byte == 0x45) // i32.eqz
    return checkUnary(I, ValType::I32, ValType::I32, Origin::Compare);
  if (Byte >= 0x46 && Byte <= 0x4f)
    return checkBinary(I, ValType::I32, ValType::I32, Origin::Compare);
  if (Byte == 0x50) // i64.eqz
    return checkUnary(I, ValType::I64, ValType::I32, Origin::Compare);
  if (Byte >= 0x51 && Byte <= 0x5a)
    return checkBinary(I, ValType::I64, ValType::I32, Origin::Compare);
  if (Byte >= 0x5b && Byte <= 0x60)
    return checkBinary(I, ValType::F32, ValType::I32, Origin::Compare);
  if (Byte >= 0x61 && Byte <= 0x66)
    return checkBinary(I, ValType::F64, ValType::I32, Origin::Compare);
  if (Byte >= 0x67 && Byte <= 0x69)
    return checkUnary(I, ValType::I32, ValType::I32, Origin::Arith);
  if (Byte >= 0x6a && Byte <= 0x78)
    return checkBinary(I, ValType::I32, ValType::I32, Origin::Arith);
  if (Byte >= 0x79 && Byte <= 0x7b)
    return checkUnary(I, ValType::I64, ValType::I64, Origin::Arith);
  if (Byte >= 0x7c && Byte <= 0x8a)
    return checkBinary(I, ValType::I64, ValType::I64, Origin::Arith);
  if (Byte >= 0x8b && Byte <= 0x91)
    return checkUnary(I, ValType::F32, ValType::F32, Origin::Arith);
  if (Byte >= 0x92 && Byte <= 0x98)
    return checkBinary(I, ValType::F32, ValType::F32, Origin::Arith);
  if (Byte >= 0x99 && Byte <= 0x9f)
    return checkUnary(I, ValType::F64, ValType::F64, Origin::Arith);
  if (Byte >= 0xa0 && Byte <= 0xa6)
    return checkBinary(I, ValType::F64, ValType::F64, Origin::Arith);

  switch (I.Op) {
  case Opcode::Unreachable:
    markUnreachable();
    return {};
  case Opcode::Nop:
    return {};

  case Opcode::Block:
  case Opcode::Loop: {
    if (Frames.size() >= MaxControlNesting)
      return failLimit("control nesting deeper than " +
                       std::to_string(MaxControlNesting));
    BlockType BT = I.blockType();
    std::vector<ValType> Results;
    if (BT.HasResult)
      Results.push_back(BT.Result);
    pushFrame(I.Op, std::move(Results), Index);
    if (I.Op == Opcode::Loop && TrackTags && Options.LoopCarryIn) {
      auto It = Options.LoopCarryIn->find(Index);
      if (It != Options.LoopCarryIn->end() &&
          It->second.size() == LocalTags.size())
        for (size_t L = 0; L < LocalTags.size(); ++L)
          LocalTags[L] = mergeTags(LocalTags[L], It->second[L]);
    }
    return {};
  }
  case Opcode::If: {
    if (Frames.size() >= MaxControlNesting)
      return failLimit("control nesting deeper than " +
                       std::to_string(MaxControlNesting));
    AbstractValue Cond;
    if (!popExpect(ValType::I32, Cond))
      return fail("if condition must be i32");
    if (Sink && reachable())
      Sink->onCondition(I, Cond);
    BlockType BT = I.blockType();
    std::vector<ValType> Results;
    if (BT.HasResult)
      Results.push_back(BT.Result);
    pushFrame(Opcode::If, std::move(Results), Index);
    return {};
  }
  case Opcode::Else: {
    if (Frames.back().Kind != Opcode::If)
      return fail("else without if");
    Frame F = Frames.back();
    std::vector<AbstractValue> ThenResults;
    if (!popSequence(F.Results, ThenResults))
      return fail("then-branch result mismatch");
    if (Stack.size() != F.StackHeight && !F.Unreachable)
      return fail("then-branch leaves extra values");
    // The then-branch's fall-through edge joins the if's end label.
    bool ThenReachable = !F.Unreachable;
    std::vector<ValueTag> ThenResultTags;
    for (const AbstractValue &Value : ThenResults)
      ThenResultTags.push_back(Value.Tag);
    Frames.pop_back();
    Stack.resize(F.StackHeight);
    Frame Successor;
    Successor.Kind = Opcode::Else;
    Successor.Results = F.Results;
    Successor.StackHeight = F.StackHeight;
    Successor.InstrIndex = F.InstrIndex;
    Successor.EntryLocals = F.EntryLocals;
    // Branches inside the then-arm that targeted the if's end label already
    // joined into the frame accumulators; the successor frame keeps them.
    // (Dropping them narrowed the join at `end` — a real bug surfaced by the
    // CFG worklist audit; see ElseDropsThenBranchJoin* regressions.)
    Successor.HasOutLocals = F.HasOutLocals;
    Successor.OutLocals = std::move(F.OutLocals);
    Successor.HasResultTags = F.HasResultTags;
    Successor.ResultTags = std::move(F.ResultTags);
    if (ThenReachable && TrackTags)
      mergeLocalsInto(Successor.HasOutLocals, Successor.OutLocals, LocalTags);
    if (ThenReachable) {
      if (!Successor.HasResultTags) {
        Successor.ResultTags = std::move(ThenResultTags);
        Successor.HasResultTags = true;
      } else {
        for (size_t R = 0; R < Successor.ResultTags.size(); ++R)
          Successor.ResultTags[R] =
              mergeTags(Successor.ResultTags[R], ThenResultTags[R]);
      }
    }
    // The else-branch starts from the state at the `if`, not from wherever
    // the then-branch left the locals.
    if (TrackTags)
      LocalTags = F.EntryLocals;
    Frames.push_back(std::move(Successor));
    return {};
  }
  case Opcode::End: {
    Frame F = Frames.back();
    if (F.Kind == Opcode::If && !F.Results.empty())
      return fail("if with result requires else");
    std::vector<AbstractValue> Results;
    if (!popSequence(F.Results, Results))
      return fail("block result mismatch at end");
    if (Stack.size() != F.StackHeight && !F.Unreachable)
      return fail("extra values on stack at end");
    bool FallThrough = !F.Unreachable;
    bool IsFunctionFrame = Frames.size() == 1;
    if (FallThrough && TrackTags)
      mergeLocalsInto(F.HasOutLocals, F.OutLocals, LocalTags);
    if (F.Kind == Opcode::If && TrackTags)
      // An `if` without `else`: the false path skips the block entirely.
      mergeLocalsInto(F.HasOutLocals, F.OutLocals, F.EntryLocals);
    if (FallThrough) {
      std::vector<ValueTag> Tags;
      for (const AbstractValue &Value : Results)
        Tags.push_back(Value.Tag);
      if (!F.HasResultTags) {
        F.ResultTags = std::move(Tags);
        F.HasResultTags = true;
      } else {
        for (size_t R = 0; R < F.ResultTags.size(); ++R)
          F.ResultTags[R] = mergeTags(F.ResultTags[R], Tags[R]);
      }
    }
    if (IsFunctionFrame && FallThrough && Sink)
      for (const AbstractValue &Value : Results)
        Sink->onReturn(Value);
    Frames.pop_back();
    Stack.resize(F.StackHeight);
    if (TrackTags && !IsFunctionFrame)
      LocalTags = F.HasOutLocals ? F.OutLocals : F.EntryLocals;
    for (size_t R = 0; R < F.Results.size(); ++R)
      pushValue(F.Results[R],
                F.HasResultTags && R < F.ResultTags.size() ? F.ResultTags[R]
                                                           : ValueTag{});
    return {};
  }
  case Opcode::Br: {
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *Types = labelTypes(I.Imm0, LoopEmpty);
    if (!Types)
      return fail("br depth out of range");
    std::vector<AbstractValue> Operands;
    if (!popSequence(*Types, Operands))
      return fail("br operand mismatch");
    noteReturnValues(I.Imm0, Operands);
    recordBranchResults(I.Imm0, Operands);
    recordBranchLocals(I.Imm0);
    markUnreachable();
    return {};
  }
  case Opcode::BrIf: {
    AbstractValue Cond;
    if (!popExpect(ValType::I32, Cond))
      return fail("br_if condition must be i32");
    if (Sink && reachable())
      Sink->onCondition(I, Cond);
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *Types = labelTypes(I.Imm0, LoopEmpty);
    if (!Types)
      return fail("br_if depth out of range");
    std::vector<AbstractValue> Operands;
    if (!popSequence(*Types, Operands))
      return fail("br_if operand mismatch");
    noteReturnValues(I.Imm0, Operands);
    recordBranchResults(I.Imm0, Operands);
    recordBranchLocals(I.Imm0);
    // Fall-through keeps the operands; the validator re-pushes them as
    // *known* values of the label types (refining polymorphic slots), so
    // this must too.
    for (size_t R = 0; R < Types->size(); ++R)
      pushValue((*Types)[R], Operands[R].Tag);
    return {};
  }
  case Opcode::BrTable: {
    AbstractValue Selector;
    if (!popExpect(ValType::I32, Selector))
      return fail("br_table index must be i32");
    std::vector<ValType> LoopEmpty;
    const std::vector<ValType> *DefaultTypes = labelTypes(I.Imm0, LoopEmpty);
    if (!DefaultTypes)
      return fail("br_table default depth out of range");
    for (uint32_t Target : I.Table) {
      std::vector<ValType> LoopEmpty2;
      const std::vector<ValType> *Types = labelTypes(Target, LoopEmpty2);
      if (!Types || *Types != *DefaultTypes)
        return fail("br_table target arity mismatch");
    }
    std::vector<AbstractValue> Operands;
    if (!popSequence(*DefaultTypes, Operands))
      return fail("br_table operand mismatch");
    noteReturnValues(I.Imm0, Operands);
    recordBranchResults(I.Imm0, Operands);
    recordBranchLocals(I.Imm0);
    for (uint32_t Target : I.Table) {
      noteReturnValues(Target, Operands);
      recordBranchResults(Target, Operands);
      recordBranchLocals(Target);
    }
    markUnreachable();
    return {};
  }
  case Opcode::Return: {
    std::vector<AbstractValue> Values;
    if (!popSequence(Type.Results, Values))
      return fail("return value mismatch");
    if (Sink && reachable())
      for (const AbstractValue &Value : Values)
        Sink->onReturn(Value);
    markUnreachable();
    return {};
  }
  case Opcode::Call: {
    uint64_t SpaceIndex = I.Imm0;
    uint32_t TypeIndex;
    if (SpaceIndex < M.Imports.size()) {
      TypeIndex = M.Imports[static_cast<size_t>(SpaceIndex)].TypeIndex;
    } else {
      uint64_t Defined = SpaceIndex - M.Imports.size();
      if (Defined >= M.Functions.size())
        return fail("call index out of range");
      TypeIndex = M.Functions[static_cast<size_t>(Defined)].TypeIndex;
    }
    if (TypeIndex >= M.Types.size())
      return fail("call type index out of range");
    const FuncType &Callee = M.Types[TypeIndex];
    std::vector<AbstractValue> Args;
    if (!popSequence(Callee.Params, Args))
      return fail("call argument mismatch");
    if (Sink && reachable())
      Sink->onCall(I, SpaceIndex, /*Indirect=*/false, Args);
    ValueTag Tag;
    Tag.Org = Origin::Call;
    for (ValType ResultType : Callee.Results)
      pushValue(ResultType, Tag);
    return {};
  }
  case Opcode::CallIndirect: {
    if (I.Imm0 >= M.Types.size())
      return fail("call_indirect type index out of range");
    AbstractValue TableIndex;
    if (!popExpect(ValType::I32, TableIndex))
      return fail("call_indirect table index must be i32");
    const FuncType &Callee = M.Types[static_cast<size_t>(I.Imm0)];
    std::vector<AbstractValue> Args;
    if (!popSequence(Callee.Params, Args))
      return fail("call_indirect argument mismatch");
    if (Sink && reachable())
      Sink->onCall(I, 0, /*Indirect=*/true, Args);
    ValueTag Tag;
    Tag.Org = Origin::Call;
    for (ValType ResultType : Callee.Results)
      pushValue(ResultType, Tag);
    return {};
  }

  case Opcode::Drop:
    if (!popAny())
      return fail("drop on empty stack");
    return {};
  case Opcode::Select: {
    AbstractValue Cond;
    if (!popExpect(ValType::I32, Cond))
      return fail("select condition must be i32");
    if (Sink && reachable())
      Sink->onCondition(I, Cond);
    std::optional<AbstractValue> B = popAny();
    std::optional<AbstractValue> A = popAny();
    if (!A || !B)
      return fail("select on empty stack");
    if (A->Known && B->Known && A->Type != B->Type)
      return fail("select operand types differ");
    ValueTag Tag = mergeTags(A->Tag, B->Tag);
    if (A->Known)
      pushValue(A->Type, Tag);
    else if (B->Known)
      pushValue(B->Type, Tag);
    else
      pushUnknown();
    return {};
  }

  case Opcode::LocalGet:
    if (I.Imm0 >= LocalTypes.size())
      return fail("local.get index out of range");
    pushValue(LocalTypes[static_cast<size_t>(I.Imm0)],
              TrackTags ? LocalTags[static_cast<size_t>(I.Imm0)]
                        : ValueTag{});
    return {};
  case Opcode::LocalSet: {
    if (I.Imm0 >= LocalTypes.size())
      return fail("local.set index out of range");
    AbstractValue Value;
    if (!popExpect(LocalTypes[static_cast<size_t>(I.Imm0)], Value))
      return fail("local.set type mismatch");
    if (Sink && reachable())
      Sink->onLocalWrite(static_cast<uint32_t>(I.Imm0), Value);
    if (TrackTags && reachable())
      LocalTags[static_cast<size_t>(I.Imm0)] = Value.Tag;
    return {};
  }
  case Opcode::LocalTee: {
    if (I.Imm0 >= LocalTypes.size())
      return fail("local.tee index out of range");
    ValType T = LocalTypes[static_cast<size_t>(I.Imm0)];
    AbstractValue Value;
    if (!popExpect(T, Value))
      return fail("local.tee type mismatch");
    if (Sink && reachable())
      Sink->onLocalWrite(static_cast<uint32_t>(I.Imm0), Value);
    if (TrackTags && reachable())
      LocalTags[static_cast<size_t>(I.Imm0)] = Value.Tag;
    pushValue(T, Value.Tag);
    return {};
  }
  case Opcode::GlobalGet: {
    if (I.Imm0 >= M.Globals.size())
      return fail("global.get index out of range");
    ValueTag Tag;
    Tag.Org = Origin::Global;
    pushValue(M.Globals[static_cast<size_t>(I.Imm0)].Type, Tag);
    return {};
  }
  case Opcode::GlobalSet: {
    if (I.Imm0 >= M.Globals.size())
      return fail("global.set index out of range");
    const wasm::GlobalDecl &Global = M.Globals[static_cast<size_t>(I.Imm0)];
    if (!Global.Mutable)
      return fail("global.set of immutable global");
    AbstractValue Value;
    if (!popExpect(Global.Type, Value))
      return fail("global.set type mismatch");
    return {};
  }

  case Opcode::I32Load:
  case Opcode::I32Load8S:
  case Opcode::I32Load8U:
  case Opcode::I32Load16S:
  case Opcode::I32Load16U:
    return checkLoad(I, ValType::I32);
  case Opcode::I64Load:
  case Opcode::I64Load8S:
  case Opcode::I64Load8U:
  case Opcode::I64Load16S:
  case Opcode::I64Load16U:
  case Opcode::I64Load32S:
  case Opcode::I64Load32U:
    return checkLoad(I, ValType::I64);
  case Opcode::F32Load:
    return checkLoad(I, ValType::F32);
  case Opcode::F64Load:
    return checkLoad(I, ValType::F64);

  case Opcode::I32Store:
  case Opcode::I32Store8:
  case Opcode::I32Store16:
    return checkStore(I, ValType::I32);
  case Opcode::I64Store:
  case Opcode::I64Store8:
  case Opcode::I64Store16:
  case Opcode::I64Store32:
    return checkStore(I, ValType::I64);
  case Opcode::F32Store:
    return checkStore(I, ValType::F32);
  case Opcode::F64Store:
    return checkStore(I, ValType::F64);

  case Opcode::MemorySize: {
    if (M.Memories.empty())
      return fail("memory.size without memory");
    ValueTag Tag;
    Tag.Org = Origin::MemQuery;
    pushValue(ValType::I32, Tag);
    return {};
  }
  case Opcode::MemoryGrow:
    if (M.Memories.empty())
      return fail("memory.grow without memory");
    return checkUnary(I, ValType::I32, ValType::I32, Origin::MemQuery);

  case Opcode::I32Const: {
    ValueTag Tag;
    Tag.Org = Origin::Const;
    pushValue(ValType::I32, Tag);
    return {};
  }
  case Opcode::I64Const: {
    ValueTag Tag;
    Tag.Org = Origin::Const;
    pushValue(ValType::I64, Tag);
    return {};
  }
  case Opcode::F32Const: {
    ValueTag Tag;
    Tag.Org = Origin::Const;
    pushValue(ValType::F32, Tag);
    return {};
  }
  case Opcode::F64Const: {
    ValueTag Tag;
    Tag.Org = Origin::Const;
    pushValue(ValType::F64, Tag);
    return {};
  }

  // Conversions.
  case Opcode::I32WrapI64:
    return checkUnary(I, ValType::I64, ValType::I32, Origin::Convert);
  case Opcode::I32TruncF32S:
  case Opcode::I32TruncF32U:
    return checkUnary(I, ValType::F32, ValType::I32, Origin::Convert);
  case Opcode::I32TruncF64S:
  case Opcode::I32TruncF64U:
    return checkUnary(I, ValType::F64, ValType::I32, Origin::Convert);
  case Opcode::I64ExtendI32S:
  case Opcode::I64ExtendI32U:
    return checkUnary(I, ValType::I32, ValType::I64, Origin::Convert);
  case Opcode::I64TruncF32S:
  case Opcode::I64TruncF32U:
    return checkUnary(I, ValType::F32, ValType::I64, Origin::Convert);
  case Opcode::I64TruncF64S:
  case Opcode::I64TruncF64U:
    return checkUnary(I, ValType::F64, ValType::I64, Origin::Convert);
  case Opcode::F32ConvertI32S:
  case Opcode::F32ConvertI32U:
    return checkUnary(I, ValType::I32, ValType::F32, Origin::Convert);
  case Opcode::F32ConvertI64S:
  case Opcode::F32ConvertI64U:
    return checkUnary(I, ValType::I64, ValType::F32, Origin::Convert);
  case Opcode::F32DemoteF64:
    return checkUnary(I, ValType::F64, ValType::F32, Origin::Convert);
  case Opcode::F64ConvertI32S:
  case Opcode::F64ConvertI32U:
    return checkUnary(I, ValType::I32, ValType::F64, Origin::Convert);
  case Opcode::F64ConvertI64S:
  case Opcode::F64ConvertI64U:
    return checkUnary(I, ValType::I64, ValType::F64, Origin::Convert);
  case Opcode::F64PromoteF32:
    return checkUnary(I, ValType::F32, ValType::F64, Origin::Convert);
  case Opcode::I32ReinterpretF32:
    return checkUnary(I, ValType::F32, ValType::I32, Origin::Convert);
  case Opcode::I64ReinterpretF64:
    return checkUnary(I, ValType::F64, ValType::I64, Origin::Convert);
  case Opcode::F32ReinterpretI32:
    return checkUnary(I, ValType::I32, ValType::F32, Origin::Convert);
  case Opcode::F64ReinterpretI64:
    return checkUnary(I, ValType::I64, ValType::F64, Origin::Convert);
  case Opcode::I32Extend8S:
  case Opcode::I32Extend16S:
    return checkUnary(I, ValType::I32, ValType::I32, Origin::Convert);
  case Opcode::I64Extend8S:
  case Opcode::I64Extend16S:
  case Opcode::I64Extend32S:
    return checkUnary(I, ValType::I64, ValType::I64, Origin::Convert);

  default:
    return fail(std::string("unhandled opcode ") + opcodeName(I.Op) +
                " at instruction " + std::to_string(Index));
  }
}

} // namespace detail

Result<void> evaluateFunction(const Module &M, uint32_t DefinedIndex,
                              EvalSink *Sink, const EvalOptions &Options) {
  if (DefinedIndex >= M.Functions.size())
    return Error(ErrorCode::Malformed, "analysis: function index out of range");
  const Function &Func = M.Functions[DefinedIndex];
  if (Func.TypeIndex >= M.Types.size())
    return Error(ErrorCode::Malformed,
                 "analysis: function type index out of range");
  detail::Evaluator E(M, Func, M.Types[Func.TypeIndex], Sink, Options);
  return E.run();
}

} // namespace analysis
} // namespace snowwhite
