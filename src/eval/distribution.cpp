#include "eval/distribution.h"

#include "support/str.h"

#include <algorithm>
#include <cmath>

namespace snowwhite {
namespace eval {

void TypeDistribution::add(const std::vector<std::string> &Tokens) {
  add(joinStrings(Tokens, " "));
}

void TypeDistribution::add(const std::string &TypeString) {
  ++Counts[TypeString];
  ++Total;
}

double TypeDistribution::entropy() const {
  if (Total == 0)
    return 0.0;
  double H = 0.0;
  for (const auto &[Type, Count] : Counts) {
    double P = static_cast<double>(Count) / static_cast<double>(Total);
    H -= P * std::log2(P);
  }
  return H;
}

double TypeDistribution::normalizedEntropy() const {
  if (Counts.size() <= 1)
    return 0.0;
  return entropy() / std::log2(static_cast<double>(Counts.size()));
}

std::vector<std::pair<std::string, uint64_t>>
TypeDistribution::mostCommon(size_t Limit) const {
  std::vector<std::pair<std::string, uint64_t>> Sorted(Counts.begin(),
                                                       Counts.end());
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  if (Sorted.size() > Limit)
    Sorted.resize(Limit);
  return Sorted;
}

std::pair<std::string, double> TypeDistribution::mostFrequent() const {
  if (Total == 0)
    return {"", 0.0};
  std::vector<std::pair<std::string, uint64_t>> Top = mostCommon(1);
  return {Top[0].first,
          static_cast<double>(Top[0].second) / static_cast<double>(Total)};
}

} // namespace eval
} // namespace snowwhite
