#include "eval/metrics.h"

#include <algorithm>

namespace snowwhite {
namespace eval {

size_t typePrefixScore(const std::vector<std::string> &Prediction,
                       const std::vector<std::string> &GroundTruth) {
  size_t Limit = std::min(Prediction.size(), GroundTruth.size());
  size_t Length = 0;
  while (Length < Limit && Prediction[Length] == GroundTruth[Length])
    ++Length;
  return Length;
}

AccuracyReport evaluateAccuracy(const model::Task &Task,
                                const PredictFn &Predict, unsigned K,
                                size_t MaxSamples) {
  AccuracyReport Report;
  const std::vector<model::EncodedSample> &Test = Task.test();
  size_t Count = Test.size();
  if (MaxSamples != 0)
    Count = std::min(Count, MaxSamples);
  for (size_t Index = 0; Index < Count; ++Index) {
    const model::EncodedSample &Sample = Test[Index];
    std::vector<std::vector<std::string>> Predictions = Predict(Sample, K);
    ++Report.NumSamples;
    DepthBucket &Bucket = Report.ByDepth[Sample.NestingDepth];
    ++Bucket.Count;
    bool Top1 = !Predictions.empty() &&
                Predictions[0] == Sample.TargetTokens;
    bool TopK = false;
    for (const std::vector<std::string> &Prediction : Predictions)
      if (Prediction == Sample.TargetTokens) {
        TopK = true;
        break;
      }
    if (Top1) {
      ++Report.Top1Hits;
      ++Bucket.Top1Hits;
    }
    if (TopK) {
      ++Report.TopKHits;
      ++Bucket.TopKHits;
    }
    if (!Predictions.empty())
      Report.PrefixScoreSum += static_cast<double>(
          typePrefixScore(Predictions[0], Sample.TargetTokens));
  }
  return Report;
}

} // namespace eval
} // namespace snowwhite
