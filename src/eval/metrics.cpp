#include "eval/metrics.h"

#include <algorithm>

namespace snowwhite {
namespace eval {

size_t typePrefixScore(const std::vector<std::string> &Prediction,
                       const std::vector<std::string> &GroundTruth) {
  size_t Limit = std::min(Prediction.size(), GroundTruth.size());
  size_t Length = 0;
  while (Length < Limit && Prediction[Length] == GroundTruth[Length])
    ++Length;
  return Length;
}

void scorePredictions(AccuracyReport &Report,
                      const std::vector<std::vector<std::string>> &Predictions,
                      const std::vector<std::string> &GroundTruth,
                      unsigned NestingDepth) {
  ++Report.NumSamples;
  DepthBucket &Bucket = Report.ByDepth[NestingDepth];
  ++Bucket.Count;
  bool Top1 = !Predictions.empty() && Predictions[0] == GroundTruth;
  bool TopK = false;
  for (const std::vector<std::string> &Prediction : Predictions)
    if (Prediction == GroundTruth) {
      TopK = true;
      break;
    }
  if (Top1) {
    ++Report.Top1Hits;
    ++Bucket.Top1Hits;
  }
  if (TopK) {
    ++Report.TopKHits;
    ++Bucket.TopKHits;
  }
  if (!Predictions.empty()) {
    Report.PrefixScoreSumTop1 += static_cast<double>(
        typePrefixScore(Predictions[0], GroundTruth));
    // The top-K variant credits the *best* candidate in the list, matching
    // the paper's TPS@5; scoring rank 0 unconditionally under-reports it.
    size_t Best = 0;
    for (const std::vector<std::string> &Prediction : Predictions)
      Best = std::max(Best, typePrefixScore(Prediction, GroundTruth));
    Report.PrefixScoreSumTopK += static_cast<double>(Best);
  }
}

AccuracyReport evaluateAccuracy(const model::Task &Task,
                                const PredictFn &Predict, unsigned K,
                                size_t MaxSamples) {
  AccuracyReport Report;
  const std::vector<model::EncodedSample> &Test = Task.test();
  size_t Count = Test.size();
  if (MaxSamples != 0)
    Count = std::min(Count, MaxSamples);
  for (size_t Index = 0; Index < Count; ++Index) {
    const model::EncodedSample &Sample = Test[Index];
    scorePredictions(Report, Predict(Sample, K), Sample.TargetTokens,
                     Sample.NestingDepth);
  }
  return Report;
}

} // namespace eval
} // namespace snowwhite
