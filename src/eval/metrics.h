//===- eval/metrics.h - Accuracy metrics (§6.3) ----------------------------===//
//
// Perfect-match accuracy within the top-1 and top-5 predictions, and the
// Type Prefix Score: TPS(t', t) = |commonPrefix(t', t)|, the number of
// leading type tokens that are correct before the prediction diverges.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_EVAL_METRICS_H
#define SNOWWHITE_EVAL_METRICS_H

#include "model/task.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace snowwhite {
namespace eval {

/// Length of the common token prefix of Prediction and GroundTruth.
size_t typePrefixScore(const std::vector<std::string> &Prediction,
                       const std::vector<std::string> &GroundTruth);

/// Per-nesting-depth accuracy bucket (Figure 4).
struct DepthBucket {
  uint64_t Count = 0;
  uint64_t Top1Hits = 0;
  uint64_t TopKHits = 0;

  double top1() const { return Count ? double(Top1Hits) / Count : 0.0; }
  double topK() const { return Count ? double(TopKHits) / Count : 0.0; }
};

/// Aggregate accuracy over a sample set.
///
/// TPS comes in two variants, matching how the paper reports it: the top-1
/// variant scores the rank-0 candidate, the top-K variant scores the *best*
/// candidate in the returned list (the paper's TPS@5 column). They used to
/// be a single sum computed from rank 0 unconditionally, which silently
/// under-reported the top-5 numbers.
struct AccuracyReport {
  uint64_t NumSamples = 0;
  uint64_t Top1Hits = 0;
  uint64_t TopKHits = 0;
  double PrefixScoreSumTop1 = 0.0;
  double PrefixScoreSumTopK = 0.0;
  std::map<unsigned, DepthBucket> ByDepth;

  double top1() const {
    return NumSamples ? double(Top1Hits) / NumSamples : 0.0;
  }
  double topK() const {
    return NumSamples ? double(TopKHits) / NumSamples : 0.0;
  }
  double meanPrefixScoreTop1() const {
    return NumSamples ? PrefixScoreSumTop1 / double(NumSamples) : 0.0;
  }
  double meanPrefixScoreTopK() const {
    return NumSamples ? PrefixScoreSumTopK / double(NumSamples) : 0.0;
  }
};

/// Folds one sample's ranked predictions into Report: top-1/top-K hits,
/// both TPS sums, and the per-depth bucket. evaluateAccuracy is a loop over
/// this; tests drive it directly with hand-made samples.
void scorePredictions(AccuracyReport &Report,
                      const std::vector<std::vector<std::string>> &Predictions,
                      const std::vector<std::string> &GroundTruth,
                      unsigned NestingDepth);

/// A prediction source: returns ranked type-token sequences for a sample.
using PredictFn = std::function<std::vector<std::vector<std::string>>(
    const model::EncodedSample &Sample, unsigned K)>;

/// Evaluates Predict over (up to MaxSamples of) Task's test split with top-K
/// retrieval.
AccuracyReport evaluateAccuracy(const model::Task &Task, const PredictFn &Predict,
                                unsigned K = 5, size_t MaxSamples = 0);

} // namespace eval
} // namespace snowwhite

#endif // SNOWWHITE_EVAL_METRICS_H
