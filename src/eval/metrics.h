//===- eval/metrics.h - Accuracy metrics (§6.3) ----------------------------===//
//
// Perfect-match accuracy within the top-1 and top-5 predictions, and the
// Type Prefix Score: TPS(t', t) = |commonPrefix(t', t)|, the number of
// leading type tokens that are correct before the prediction diverges.
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_EVAL_METRICS_H
#define SNOWWHITE_EVAL_METRICS_H

#include "model/task.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace snowwhite {
namespace eval {

/// Length of the common token prefix of Prediction and GroundTruth.
size_t typePrefixScore(const std::vector<std::string> &Prediction,
                       const std::vector<std::string> &GroundTruth);

/// Per-nesting-depth accuracy bucket (Figure 4).
struct DepthBucket {
  uint64_t Count = 0;
  uint64_t Top1Hits = 0;
  uint64_t TopKHits = 0;

  double top1() const { return Count ? double(Top1Hits) / Count : 0.0; }
  double topK() const { return Count ? double(TopKHits) / Count : 0.0; }
};

/// Aggregate accuracy over a sample set.
struct AccuracyReport {
  uint64_t NumSamples = 0;
  uint64_t Top1Hits = 0;
  uint64_t TopKHits = 0;
  double PrefixScoreSum = 0.0;
  std::map<unsigned, DepthBucket> ByDepth;

  double top1() const {
    return NumSamples ? double(Top1Hits) / NumSamples : 0.0;
  }
  double topK() const {
    return NumSamples ? double(TopKHits) / NumSamples : 0.0;
  }
  double meanPrefixScore() const {
    return NumSamples ? PrefixScoreSum / double(NumSamples) : 0.0;
  }
};

/// A prediction source: returns ranked type-token sequences for a sample.
using PredictFn = std::function<std::vector<std::vector<std::string>>(
    const model::EncodedSample &Sample, unsigned K)>;

/// Evaluates Predict over (up to MaxSamples of) Task's test split with top-K
/// retrieval.
AccuracyReport evaluateAccuracy(const model::Task &Task, const PredictFn &Predict,
                                unsigned K = 5, size_t MaxSamples = 0);

} // namespace eval
} // namespace snowwhite

#endif // SNOWWHITE_EVAL_METRICS_H
