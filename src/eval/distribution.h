//===- eval/distribution.h - Type distribution statistics (§6.2) -----------===//
//
// Counts realized types under a given language, and summarizes the
// distribution: number of unique types |L|, normalized entropy H / H_max
// with H_max = log2 |L|, and the most frequent types (Tables 2 and 4).
//
//===----------------------------------------------------------------------===//

#ifndef SNOWWHITE_EVAL_DISTRIBUTION_H
#define SNOWWHITE_EVAL_DISTRIBUTION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace snowwhite {
namespace eval {

/// An empirical distribution over type strings.
class TypeDistribution {
public:
  /// Records one sample of the type spelled by Tokens.
  void add(const std::vector<std::string> &Tokens);
  void add(const std::string &TypeString);

  uint64_t totalSamples() const { return Total; }
  size_t uniqueTypes() const { return Counts.size(); }

  /// Shannon entropy in bits.
  double entropy() const;

  /// H / log2(|L|); 1 for a uniform distribution, smaller when biased.
  double normalizedEntropy() const;

  /// The Limit most frequent types with their counts, descending.
  std::vector<std::pair<std::string, uint64_t>> mostCommon(size_t Limit) const;

  /// The single most frequent type and its share of the distribution.
  std::pair<std::string, double> mostFrequent() const;

private:
  std::map<std::string, uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace eval
} // namespace snowwhite

#endif // SNOWWHITE_EVAL_DISTRIBUTION_H
